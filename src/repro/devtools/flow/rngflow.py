"""RNG-stream taint analysis (``REPRO-D101``/``D102``/``D103``).

Three whole-program checks over how ``numpy.random.Generator`` objects
flow through the package:

* **D101 — untraceable draw.**  In the seeded directories every draw
  must trace, through parameters, locally-constructed streams
  (``default_rng(derive_seed(...))``, ``RngRegistry.stream``), or
  seeded instance attributes, back to a seeded stream.  Draws on
  module-global Generators (stream position shared by every caller) and
  on unseeded ``default_rng()`` values are flagged too.
* **D102 — Generator escape.**  A Generator captured by a closure that
  escapes the defining function (returned / stored on ``self`` or a
  container), or passed into a process boundary (``grid_sweep``,
  ``Executor.submit``/``map``) where pickling forks the stream state
  identically into every worker.
* **D103 — draw-count / draw-parity contract.**  Regions annotated
  ``# repro: fixed-draws: <reason>`` promise a data-independent number
  of draws per entry (the chaos-overlay pulse contract); the pass flags
  draws nested under data-dependent control flow and conditional early
  exits between draws.  Regions annotated
  ``# repro: draw-parity[group]: <reason>`` promise identical draw
  skeletons (method, arity, control context) across all group members —
  how the discrete and vectorized engines pin their victim-sampling
  equivalence statically.

Malformed, unattached, or stale directives are ``REPRO-D100``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.devtools.flow.base import deep_diag, deep_rule
from repro.devtools.flow.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    attr_chain,
)
from repro.devtools.lint.engine import Diagnostic, _comment_lines
from repro.devtools.lint.rules import _GENERATOR_DRAWS, SEEDED_DIRS

__all__ = ["RULES", "RngFlowPass"]

DIRECTIVE_RULE = deep_rule(
    "REPRO-D100",
    "flow-directive",
    "fixed-draws / draw-parity directives are load-bearing contracts; a "
    "malformed, unattached, or stale one silently stops guarding the "
    "draw-count invariant it was written for.",
    "attach the directive to a def/for/while line, give it a reason, "
    "and delete it when the guarded draws are gone",
)
TAINT_RULE = deep_rule(
    "REPRO-D101",
    "rng-taint",
    "Replay results are cached and compared byte-for-byte across "
    "engines and sweep workers; a draw that does not trace back to a "
    "seeded named stream (via parameters, derive_seed construction, or "
    "RngRegistry.stream) makes output depend on hidden shared state.",
    "thread a seeded Generator parameter through, or construct the "
    "stream locally via np.random.default_rng(derive_seed(...))",
)
ESCAPE_RULE = deep_rule(
    "REPRO-D102",
    "rng-escape",
    "A Generator that escapes its defining scope (closure, attribute "
    "store) or crosses a process boundary is advanced out of program "
    "order — pickling into grid_sweep workers forks the same stream "
    "state into every worker, so all workers draw identical values.",
    "pass a seed across the boundary and construct the stream inside "
    "the worker (grid_sweep does this via derive_seed per point)",
)
CONTRACT_RULE = deep_rule(
    "REPRO-D103",
    "draw-contract",
    "Chaos injections and engine-parity regions declare fixed or "
    "matching RNG draw counts; a draw under data-dependent control "
    "flow shifts every subsequent stream position, silently breaking "
    "byte-identical replay equivalence.",
    "hoist draws out of conditionals (draw unconditionally, apply "
    "conditionally) or restructure so every entry draws equally",
)

RULES = (DIRECTIVE_RULE, TAINT_RULE, ESCAPE_RULE, CONTRACT_RULE)

#: Generator draw methods (superset of the shallow rule's set — any of
#: these consumes entropy and advances the stream).
DRAW_METHODS = frozenset(
    _GENERATOR_DRAWS
    | {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "dirichlet",
        "gamma",
        "geometric",
        "gumbel",
        "laplace",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "pareto",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_t",
        "triangular",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
    }
)

_DIRECTIVE_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>fixed-draws|draw-parity)"
    r"(?:\[(?P<arg>[A-Za-z0-9_.\-, ]+)\])?"
    r"(?:\s*:\s*(?P<reason>.*))?$"
)

_BOUNDARY_METHODS = frozenset({"submit", "map", "imap", "imap_unordered", "apply_async"})
_BOUNDARY_RECEIVER_TOKENS = ("pool", "executor")


def _is_generator_type(type_name: Optional[str]) -> bool:
    return type_name is not None and (
        type_name == "Generator" or type_name.endswith(".Generator")
    )


def _rng_like(name: str) -> bool:
    lowered = name.lower().lstrip("_")
    return lowered == "rng" or lowered.endswith("_rng") or lowered.startswith("rng")


def _classify_call(value: ast.Call) -> Optional[str]:
    """'seeded'/'unseeded' for stream-constructing calls, else None."""
    chain = attr_chain(value.func)
    if chain:
        tail = chain[-1]
    elif isinstance(value.func, ast.Attribute):
        # chain root is itself a call — ``RngRegistry(seed).stream(...)``
        tail = value.func.attr
    else:
        return None
    if tail == "default_rng":
        if not value.args and not value.keywords:
            return "unseeded"
        return "seeded"  # seed *quality* is REPRO-R001's job
    if tail in ("stream", "spawn"):
        return "seeded"  # RngRegistry.stream / Generator.spawn idioms
    return None


class RngFlowPass:
    """The RNG taint / escape / contract pass."""

    name = "rng-taint"
    rules = RULES

    def run(self, index: ProjectIndex) -> list[Diagnostic]:
        self._index = index
        self._attr_tags = self._class_attr_tags(index)
        out: list[Diagnostic] = []
        for module in index.modules.values():
            if module.in_dir("devtools/"):
                continue
            for fn in index.functions.values():
                if fn.module != module.name:
                    continue
                env = self._function_env(fn)
                out.extend(self._check_draws(module, fn, env))
                out.extend(self._check_escapes(module, fn, env))
        out.extend(self._check_directives(index))
        return out

    # ------------------------------------------------------------------
    # Taint classification
    # ------------------------------------------------------------------
    def _class_attr_tags(self, index: ProjectIndex) -> dict[str, dict[str, str]]:
        """Per-class ``self.attr`` RNG tags from assignments in any
        method (two rounds, so ``self._rng = rng`` chains resolve)."""
        tags: dict[str, dict[str, str]] = {c: {} for c in index.classes}
        for _ in range(2):
            for cls in index.classes.values():
                cls_tags = tags[cls.qname]
                for method in cls.methods.values():
                    param_env = {
                        p: "seeded"
                        for p in method.param_names
                        if _is_generator_type(method.param_types.get(p))
                        or _rng_like(p)
                    }
                    for node in ast.walk(method.node):
                        if not (
                            isinstance(node, ast.Assign)
                            and len(node.targets) == 1
                        ):
                            continue
                        target = node.targets[0]
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        tag = self._expr_tag_basic(
                            method, node.value, param_env, tags
                        )
                        if tag:
                            cls_tags.setdefault(target.attr, tag)
        return tags

    def _attr_tag(self, cls_qname: str, attr: str) -> Optional[str]:
        for info in self._index.mro(cls_qname):
            tag = self._attr_tags.get(info.qname, {}).get(attr)
            if tag:
                return tag
        return None

    def _expr_tag_basic(
        self,
        fn: FunctionInfo,
        value: ast.expr,
        env: dict[str, str],
        tags: dict[str, dict[str, str]],
    ) -> Optional[str]:
        if isinstance(value, ast.Call):
            return _classify_call(value)
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
        ):
            head = value.value.id
            if head == "self" and fn.owner:
                for info in self._index.mro(fn.owner):
                    tag = tags.get(info.qname, {}).get(value.attr)
                    if tag:
                        return tag
                return None
            receiver_type = fn.param_types.get(head)
            if receiver_type and receiver_type in self._index.classes:
                for info in self._index.mro(receiver_type):
                    tag = tags.get(info.qname, {}).get(value.attr)
                    if tag:
                        return tag
        return None

    def _function_env(self, fn: FunctionInfo) -> dict[str, str]:
        """Name -> 'seeded'/'unseeded'/'global' inside ``fn``."""
        env: dict[str, str] = {}
        for param in fn.param_names:
            if _is_generator_type(fn.param_types.get(param)) or _rng_like(param):
                env[param] = "seeded"
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                tag = self._expr_tag(fn, node.value, env)
                if tag:
                    env.setdefault(node.targets[0].id, tag)
        return env

    def _expr_tag(
        self, fn: FunctionInfo, value: ast.expr, env: dict[str, str]
    ) -> Optional[str]:
        tag = self._expr_tag_basic(fn, value, env, self._attr_tags)
        if tag:
            return tag
        if isinstance(value, ast.Name):
            module = self._index.modules[fn.module]
            module_value = module.module_assigns.get(value.id)
            if module_value is not None and isinstance(module_value, ast.Call):
                if _classify_call(module_value) is not None:
                    return "global"
        return None

    # ------------------------------------------------------------------
    # D101: draws
    # ------------------------------------------------------------------
    def _check_draws(
        self, module: ModuleInfo, fn: FunctionInfo, env: dict[str, str]
    ) -> Iterator[Diagnostic]:
        if not module.in_dir(*SEEDED_DIRS):
            return
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if len(chain) < 2 or chain[-1] not in DRAW_METHODS:
                continue
            receiver = node.func
            assert isinstance(receiver, ast.Attribute)
            tag = self._expr_tag(fn, receiver.value, env)
            receiver_name = chain[-2]
            if tag == "global":
                yield deep_diag(
                    TAINT_RULE,
                    module,
                    node,
                    f"draw .{chain[-1]}() on module-global Generator "
                    f"{'.'.join(chain[:-1])!r} — stream position is shared "
                    f"by every caller and survives across runs in-process",
                )
            elif tag == "unseeded":
                yield deep_diag(
                    TAINT_RULE,
                    module,
                    node,
                    f"draw .{chain[-1]}() on an unseeded Generator "
                    f"({'.'.join(chain[:-1])!r} comes from default_rng() "
                    f"with OS entropy)",
                )
            elif tag is None and _rng_like(receiver_name):
                yield deep_diag(
                    TAINT_RULE,
                    module,
                    node,
                    f"draw .{chain[-1]}() on {'.'.join(chain[:-1])!r} "
                    f"cannot be traced to a seeded stream (no Generator "
                    f"parameter, derive_seed construction, or "
                    f"RngRegistry.stream reaches it)",
                )

    # ------------------------------------------------------------------
    # D102: escapes
    # ------------------------------------------------------------------
    def _check_escapes(
        self, module: ModuleInfo, fn: FunctionInfo, env: dict[str, str]
    ) -> Iterator[Diagnostic]:
        rng_names = set(env)
        if rng_names:
            capturing = self._capturing_closures(fn, rng_names)
            if capturing:
                yield from self._closure_escapes(module, fn, capturing)
        yield from self._boundary_crossings(module, fn, env)

    def _capturing_closures(
        self, fn: FunctionInfo, rng_names: set[str]
    ) -> dict[ast.AST, set[str]]:
        capturing: dict[ast.AST, set[str]] = {}
        for node in ast.walk(fn.node):
            if node is fn.node or not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            params = {a.arg for a in [
                *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs
            ]}
            stored = {
                sub.id
                for sub in ast.walk(node)
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store)
            }
            loaded = {
                sub.id
                for sub in ast.walk(node)
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
            }
            captured = (loaded - params - stored) & rng_names
            if captured:
                capturing[node] = captured
        return capturing

    def _closure_escapes(
        self,
        module: ModuleInfo,
        fn: FunctionInfo,
        capturing: dict[ast.AST, set[str]],
    ) -> Iterator[Diagnostic]:
        names = {
            node.name: caps
            for node, caps in capturing.items()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        lambdas = {
            node: caps
            for node, caps in capturing.items()
            if isinstance(node, ast.Lambda)
        }

        def escaping(expr: ast.expr) -> Optional[set[str]]:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name) and sub.id in names:
                    return names[sub.id]
                if isinstance(sub, ast.Lambda) and sub in lambdas:
                    return lambdas[sub]
            return None

        for node in ast.walk(fn.node):
            caps: Optional[set[str]] = None
            how = ""
            if isinstance(node, ast.Return) and node.value is not None:
                caps, how = escaping(node.value), "returned"
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    caps, how = escaping(node.value), "stored"
            if caps:
                captured = ", ".join(sorted(caps))
                yield deep_diag(
                    ESCAPE_RULE,
                    module,
                    node,
                    f"closure capturing Generator {captured!r} is {how} — "
                    f"the stream escapes {fn.name}() and its draws are no "
                    f"longer ordered by this function's control flow",
                )

    def _boundary_crossings(
        self, module: ModuleInfo, fn: FunctionInfo, env: dict[str, str]
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            site = self._index.resolve_call(fn, node)
            is_pool_method = (
                len(chain) >= 2
                and chain[-1] in _BOUNDARY_METHODS
                and any(
                    token in part.lower()
                    for part in chain[:-1]
                    for token in _BOUNDARY_RECEIVER_TOKENS
                )
            )
            is_sweep = any(
                target.endswith(".grid_sweep") for target in site.targets
            ) or (
                site.external is not None
                and site.external.endswith(".grid_sweep")
            )
            if not (is_pool_method or is_sweep):
                continue
            boundary = "Executor" if is_pool_method else "grid_sweep"
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                carried = sorted(
                    {
                        sub.id
                        for sub in ast.walk(arg)
                        if isinstance(sub, ast.Name) and sub.id in env
                    }
                )
                if carried:
                    yield deep_diag(
                        ESCAPE_RULE,
                        module,
                        node,
                        f"Generator {', '.join(repr(c) for c in carried)} "
                        f"passed across the {boundary} process boundary — "
                        f"pickling forks identical stream state into every "
                        f"worker",
                    )

    # ------------------------------------------------------------------
    # D100/D103: draw-count and draw-parity directives
    # ------------------------------------------------------------------
    def _check_directives(self, index: ProjectIndex) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        parity_groups: dict[str, list[tuple[ModuleInfo, ast.stmt, list]]] = {}
        for module in index.modules.values():
            for lineno, comment in sorted(_comment_lines(module.source).items()):
                match = _DIRECTIVE_RE.search(comment)
                if match is None:
                    continue
                kind = match.group("kind")
                arg = (match.group("arg") or "").strip()
                reason = (match.group("reason") or "").strip()
                stmt = self._attached_stmt(module, lineno)
                if stmt is None:
                    out.append(
                        deep_diag(
                            DIRECTIVE_RULE,
                            module,
                            None,
                            f"{kind} directive on line {lineno} is not "
                            f"attached to a def/for/while statement",
                        )
                    )
                    continue
                if not reason:
                    out.append(
                        deep_diag(
                            DIRECTIVE_RULE,
                            module,
                            stmt,
                            f"{kind} directive without a reason",
                        )
                    )
                if kind == "fixed-draws":
                    out.extend(self._check_fixed_draws(module, stmt))
                else:
                    if not arg:
                        out.append(
                            deep_diag(
                                DIRECTIVE_RULE,
                                module,
                                stmt,
                                "draw-parity directive without a [group]",
                            )
                        )
                        continue
                    skeleton = self._draw_skeleton(stmt)
                    parity_groups.setdefault(arg, []).append(
                        (module, stmt, skeleton)
                    )
        for group, members in sorted(parity_groups.items()):
            out.extend(self._check_parity_group(group, members))
        return out

    @staticmethod
    def _attached_stmt(
        module: ModuleInfo, lineno: int
    ) -> Optional[ast.stmt]:
        for node in ast.walk(module.tree):
            if (
                isinstance(
                    node,
                    (ast.For, ast.While, ast.FunctionDef, ast.AsyncFunctionDef),
                )
                and node.lineno == lineno
            ):
                return node
        return None

    @classmethod
    def _region_body(cls, stmt: ast.stmt) -> list[ast.stmt]:
        return list(getattr(stmt, "body", []))

    @classmethod
    def _is_draw_call(cls, node: ast.Call) -> bool:
        chain = attr_chain(node.func)
        return (
            len(chain) >= 2
            and chain[-1] in DRAW_METHODS
            and (_rng_like(chain[-2]) or _rng_like(chain[0]))
        )

    @classmethod
    def _collect_draws(
        cls, body: list[ast.stmt], context: tuple[str, ...]
    ) -> list[tuple[ast.Call, tuple[str, ...]]]:
        """Draw calls with their control context within a region."""
        out: list[tuple[ast.Call, tuple[str, ...]]] = []
        for stmt in body:
            if isinstance(stmt, ast.If):
                out.extend(cls._expr_draws(stmt.test, context))
                out.extend(cls._collect_draws(stmt.body, (*context, "if")))
                out.extend(cls._collect_draws(stmt.orelse, (*context, "else")))
            elif isinstance(stmt, (ast.For, ast.While)):
                tag = "for" if isinstance(stmt, ast.For) else "while"
                if isinstance(stmt, ast.For):
                    out.extend(cls._expr_draws(stmt.iter, context))
                else:
                    out.extend(cls._expr_draws(stmt.test, context))
                out.extend(cls._collect_draws(stmt.body, (*context, tag)))
                out.extend(cls._collect_draws(stmt.orelse, (*context, tag)))
            elif isinstance(stmt, ast.Try):
                for part in (stmt.body, stmt.orelse, stmt.finalbody):
                    out.extend(cls._collect_draws(part, (*context, "try")))
                for handler in stmt.handlers:
                    out.extend(
                        cls._collect_draws(handler.body, (*context, "try"))
                    )
            elif isinstance(stmt, ast.With):
                out.extend(cls._collect_draws(stmt.body, context))
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes run on their own schedule
            else:
                for value in ast.iter_child_nodes(stmt):
                    if isinstance(value, ast.expr):
                        out.extend(cls._expr_draws(value, context))
        return out

    @classmethod
    def _expr_draws(
        cls, expr: ast.expr, context: tuple[str, ...]
    ) -> list[tuple[ast.Call, tuple[str, ...]]]:
        out: list[tuple[ast.Call, tuple[str, ...]]] = []
        if isinstance(expr, ast.Call) and cls._is_draw_call(expr):
            out.append((expr, context))
        extended: tuple[str, ...] = context
        if isinstance(expr, ast.IfExp):
            extended = (*context, "ifexp")
        elif isinstance(expr, ast.BoolOp):
            extended = (*context, "boolop")
        elif isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            extended = (*context, "comp")
        elif isinstance(expr, ast.Lambda):
            return out  # deferred execution: not part of this region
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out.extend(cls._expr_draws(child, extended))
            # comprehension clauses are not exprs; recurse explicitly
            elif isinstance(child, ast.comprehension):
                for sub in ast.walk(child):
                    if isinstance(sub, ast.Call) and cls._is_draw_call(sub):
                        out.append((sub, (*context, "comp")))
        return out

    def _check_fixed_draws(
        self, module: ModuleInfo, stmt: ast.stmt
    ) -> Iterator[Diagnostic]:
        body = self._region_body(stmt)
        draws = self._collect_draws(body, ())
        if not draws:
            yield deep_diag(
                DIRECTIVE_RULE,
                module,
                stmt,
                "fixed-draws region contains no RNG draws — stale directive",
            )
            return
        for call, context in draws:
            if context:
                yield deep_diag(
                    CONTRACT_RULE,
                    module,
                    call,
                    f"draw under data-dependent control flow "
                    f"({' > '.join(context)}) inside a fixed-draws region — "
                    f"the per-entry draw count can vary with input data",
                )
        exits = [
            node
            for s in body
            for node in ast.walk(s)
            if isinstance(node, (ast.Break, ast.Continue, ast.Return))
        ]
        unconditional = {id(s) for s in body}
        for exit_node in exits:
            # only *conditional* exits vary the count; an exit that is a
            # direct child of the region body ends every entry equally
            if id(exit_node) in unconditional:
                continue
            later = [c for c, _ in draws if c.lineno > exit_node.lineno]
            if later:
                yield deep_diag(
                    CONTRACT_RULE,
                    module,
                    exit_node,
                    "conditional early exit before later draws in a "
                    "fixed-draws region — entries that exit here consume "
                    "fewer draws",
                )
                break

    def _draw_skeleton(self, stmt: ast.stmt) -> list[tuple[str, int, tuple[str, ...]]]:
        body = self._region_body(stmt)
        skeleton = []
        for call, context in self._collect_draws(body, ()):
            chain = attr_chain(call.func)
            arity = len(call.args) + len(call.keywords)
            skeleton.append((chain[-1], arity, context))
        return skeleton

    def _check_parity_group(
        self,
        group: str,
        members: list[tuple[ModuleInfo, ast.stmt, list]],
    ) -> Iterator[Diagnostic]:
        if len(members) < 2:
            module, stmt, _ = members[0]
            yield deep_diag(
                DIRECTIVE_RULE,
                module,
                stmt,
                f"draw-parity group {group!r} has a single member — "
                f"nothing to compare against",
            )
            return
        reference_module, _, reference = members[0]
        for module, stmt, skeleton in members[1:]:
            if skeleton != reference:
                def _fmt(sk: list) -> str:
                    return (
                        "; ".join(
                            f"{m}/{n}args@{'>'.join(c) or 'top'}"
                            for m, n, c in sk
                        )
                        or "<no draws>"
                    )

                yield deep_diag(
                    CONTRACT_RULE,
                    module,
                    stmt,
                    f"draw-parity group {group!r} mismatch: this region "
                    f"draws [{_fmt(skeleton)}] but "
                    f"{reference_module.relpath} draws [{_fmt(reference)}]",
                )
