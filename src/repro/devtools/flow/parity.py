"""Engine-parity surface check (``REPRO-D301``/``D302``).

The discrete oracle (``experiments/replay.py``) and the vectorized /
hybrid data plane (``experiments/fastpath.py``) promise byte-identical
``ReplayResult``s and telemetry streams.  The property tests check that
dynamically on sampled traces; this pass checks the *write surface*
statically, so a field or event added to one engine and forgotten in
the other is caught before any trace runs:

* **D301** — a result-type constructor field set by one engine path and
  never by another, or a telemetry event class emitted by one path
  only.
* **D302** — interprocedural ordered-iteration: a function whose return
  value is an unordered collection (set literal, ``set()``/
  ``frozenset()``, ``.keys()`` — propagated through returns of calls),
  iterated by an order-sensitive loop body at a call site in another
  function.  The per-file O001 rule catches the syntactic version; this
  catches the version hidden behind a function boundary, which only
  manifests as run-to-run drift under differing ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.devtools.flow.base import deep_diag, deep_rule
from repro.devtools.flow.project import (
    ModuleInfo,
    ProjectIndex,
    attr_chain,
)
from repro.devtools.lint.engine import Diagnostic
from repro.devtools.lint.rules import _body_order_sensitivity

__all__ = ["DEFAULT_SURFACES", "EngineSurface", "ParityPass", "RULES"]

SURFACE_RULE = deep_rule(
    "REPRO-D301",
    "engine-parity",
    "Discrete, vectorized, and hybrid replay paths must produce "
    "byte-identical ReplayResults and telemetry streams; a field or "
    "event written by only one path is a divergence the equivalence "
    "property tests can only catch after the fact, per trace.",
    "write the field/emit the event in every engine path (or fold the "
    "write into shared code both paths call)",
)
ORDER_RULE = deep_rule(
    "REPRO-D302",
    "cross-function-iteration-order",
    "A function returning a set hides the unordered iteration from the "
    "per-file rule; when a caller's loop body appends results, emits "
    "telemetry, or draws RNG, iteration order (hash-seed dependent for "
    "str elements) leaks into replay output.",
    "return a sorted list from the producer, or sort at the call site",
)

RULES = (SURFACE_RULE, ORDER_RULE)


@dataclass(frozen=True)
class EngineSurface:
    """One engine path: a name and the package-relative files it owns."""

    name: str
    prefixes: tuple[str, ...]


DEFAULT_SURFACES: tuple[EngineSurface, ...] = (
    EngineSurface("discrete", ("experiments/replay.py",)),
    EngineSurface("fastpath", ("experiments/fastpath.py",)),
)
DEFAULT_RESULT_CLASSES: tuple[str, ...] = ("ReplayResult",)

_EMIT_RECEIVER_TOKENS = ("bus", "telemetry")


class ParityPass:
    """Statically diff the write surfaces of the engine paths."""

    name = "engine-parity"
    rules = RULES

    def __init__(
        self,
        surfaces: Sequence[EngineSurface] = DEFAULT_SURFACES,
        result_classes: Sequence[str] = DEFAULT_RESULT_CLASSES,
    ) -> None:
        self.surfaces = tuple(surfaces)
        self.result_classes = tuple(result_classes)

    def run(self, index: ProjectIndex) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        out.extend(self._surface_diffs(index))
        out.extend(self._cross_function_order(index))
        return out

    # ------------------------------------------------------------------
    # D301: constructor-field and event-emission diffs
    # ------------------------------------------------------------------
    def _surface_modules(
        self, index: ProjectIndex, surface: EngineSurface
    ) -> list[ModuleInfo]:
        return [
            module
            for name, module in sorted(index.modules.items())
            if module.in_dir(*surface.prefixes)
        ]

    def _surface_diffs(self, index: ProjectIndex) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        # result-class ctor kwargs per surface
        for result_class in self.result_classes:
            fields: dict[str, set[str]] = {}
            anchor: dict[str, tuple[ModuleInfo, ast.Call]] = {}
            for surface in self.surfaces:
                for module in self._surface_modules(index, surface):
                    for node in ast.walk(module.tree):
                        if not isinstance(node, ast.Call):
                            continue
                        chain = attr_chain(node.func)
                        if not chain or chain[-1] != result_class:
                            continue
                        named = {
                            kw.arg for kw in node.keywords if kw.arg
                        }
                        fields.setdefault(surface.name, set()).update(named)
                        anchor.setdefault(surface.name, (module, node))
            if len(fields) < 2:
                continue
            union: set[str] = set().union(*fields.values())
            for surface_name in sorted(fields):
                missing = union - fields[surface_name]
                module, node = anchor[surface_name]
                for field_name in sorted(missing):
                    setters = ", ".join(
                        sorted(s for s in fields if field_name in fields[s])
                    )
                    out.append(
                        deep_diag(
                            SURFACE_RULE,
                            module,
                            node,
                            f"{result_class} field {field_name!r} is set "
                            f"by the {setters} path but never by the "
                            f"{surface_name} path",
                        )
                    )
        # event classes emitted per surface
        events: dict[str, set[str]] = {}
        event_anchor: dict[str, tuple[ModuleInfo, ast.Call]] = {}
        for surface in self.surfaces:
            for module in self._surface_modules(index, surface):
                for node in ast.walk(module.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    chain = attr_chain(node.func)
                    if (
                        len(chain) < 2
                        or chain[-1] != "emit"
                        or not any(
                            token in part.lower()
                            for part in chain[:-1]
                            for token in _EMIT_RECEIVER_TOKENS
                        )
                    ):
                        continue
                    if not node.args or not isinstance(node.args[0], ast.Call):
                        continue
                    event_chain = attr_chain(node.args[0].func)
                    if not event_chain:
                        continue
                    events.setdefault(surface.name, set()).add(
                        event_chain[-1]
                    )
                    event_anchor.setdefault(surface.name, (module, node))
        if len(events) >= 2:
            union = set().union(*events.values())
            for surface_name in sorted(events):
                missing = union - events[surface_name]
                module, node = event_anchor[surface_name]
                for event_name in sorted(missing):
                    emitters = ", ".join(
                        sorted(s for s in events if event_name in events[s])
                    )
                    out.append(
                        deep_diag(
                            SURFACE_RULE,
                            module,
                            node,
                            f"telemetry event {event_name!r} is emitted by "
                            f"the {emitters} path but never by the "
                            f"{surface_name} path",
                        )
                    )
        return out

    # ------------------------------------------------------------------
    # D302: unordered returns iterated order-sensitively
    # ------------------------------------------------------------------
    @staticmethod
    def _unordered_return_reason(value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            if chain in (["set"], ["frozenset"]):
                return f"{chain[0]}(...)"
            if chain and chain[-1] == "keys":
                return ".keys()"
        return None

    def _cross_function_order(self, index: ProjectIndex) -> list[Diagnostic]:
        unordered: dict[str, str] = {}
        for qname, fn in index.functions.items():
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    reason = self._unordered_return_reason(node.value)
                    if reason:
                        unordered[qname] = reason
                        break
        # propagate through functions that return another's result
        for _ in range(3):
            changed = False
            for qname, fn in index.functions.items():
                if qname in unordered:
                    continue
                for node in ast.walk(fn.node):
                    if not (
                        isinstance(node, ast.Return)
                        and isinstance(node.value, ast.Call)
                    ):
                        continue
                    site = index.resolve_call(fn, node.value)
                    hit = next(
                        (t for t in site.targets if t in unordered), None
                    )
                    if hit:
                        unordered[qname] = f"{unordered[hit]} (via {hit})"
                        changed = True
                        break
            if not changed:
                break
        if not unordered:
            return []
        out: list[Diagnostic] = []
        for qname in sorted(index.functions):
            fn = index.functions[qname]
            module = index.modules[fn.module]
            for node in ast.walk(fn.node):
                iters: list[tuple[ast.expr, Optional[Sequence[ast.stmt]], ast.AST]]
                if isinstance(node, ast.For):
                    iters = [(node.iter, node.body, node)]
                elif isinstance(node, ast.ListComp):
                    iters = [(g.iter, None, node) for g in node.generators]
                else:
                    continue
                for iter_expr, body, anchor_node in iters:
                    if not isinstance(iter_expr, ast.Call):
                        continue
                    site = index.resolve_call(fn, iter_expr)
                    hit = next(
                        (t for t in site.targets if t in unordered), None
                    )
                    if hit is None:
                        continue
                    if body is not None:
                        sensitivity = _body_order_sensitivity(body)
                        if sensitivity is None:
                            continue
                        message = (
                            f"{fn.name}() iterates over {hit}(), which "
                            f"returns {unordered[hit]}, and its body "
                            f"{sensitivity} — iteration order leaks into "
                            f"results across the call boundary"
                        )
                    else:
                        message = (
                            f"{fn.name}() builds a list from {hit}(), "
                            f"which returns {unordered[hit]} — element "
                            f"order is undefined across the call boundary"
                        )
                    out.append(
                        deep_diag(ORDER_RULE, module, anchor_node, message)
                    )
        return out
