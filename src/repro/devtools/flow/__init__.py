"""Interprocedural determinism analysis — ``repro lint --deep``.

Whole-program passes over a :class:`ProjectIndex` (symbol table + call
graph of the package):

* :class:`~repro.devtools.flow.rngflow.RngFlowPass` (``rng-taint``) —
  RNG-stream taint: untraceable draws, Generator escapes across
  closures and process boundaries, fixed-draw-count and draw-parity
  contracts (``REPRO-D100``–``D103``).
* :class:`~repro.devtools.flow.stationarity.StationarityPass`
  (``stationarity``) — verifies ``ServingPolicy.stationary_decisions``
  in both directions against reachable wall-clock/``obs.now``/mutation
  behaviour, with a ``stationary_state`` whitelist
  (``REPRO-D201``–``D203``).
* :class:`~repro.devtools.flow.parity.ParityPass` (``engine-parity``) —
  diffs the ``ReplayResult``/telemetry write surfaces of the discrete
  and vectorized/hybrid engines and finds cross-function unordered
  iteration (``REPRO-D301``/``D302``).

See ``docs/STATIC_ANALYSIS.md`` ("Interprocedural analysis") for the
workflow, and :mod:`repro.devtools.flow.runner` for suppression
semantics.
"""

from repro.devtools.flow.parity import DEFAULT_SURFACES, EngineSurface, ParityPass
from repro.devtools.flow.project import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)
from repro.devtools.flow.rngflow import RngFlowPass
from repro.devtools.flow.runner import (
    ALL_DEEP_RULES,
    PASS_NAMES,
    make_passes,
    run_deep,
)
from repro.devtools.flow.stationarity import StationarityPass

__all__ = [
    "ALL_DEEP_RULES",
    "CallSite",
    "ClassInfo",
    "DEFAULT_SURFACES",
    "EngineSurface",
    "FunctionInfo",
    "ModuleInfo",
    "PASS_NAMES",
    "ParityPass",
    "ProjectIndex",
    "RngFlowPass",
    "StationarityPass",
    "make_passes",
    "run_deep",
]
