"""Pass registry, deep-marker suppression, and the ``--deep`` runner.

``run_deep`` executes the interprocedural passes over a
:class:`~repro.devtools.flow.project.ProjectIndex` and returns an
ordinary :class:`~repro.devtools.lint.engine.LintReport`, so deep
findings flow through the same rendering, budget, JSON, and baseline
machinery as the per-file rules.

Suppression interop: deep findings are silenced only by a
``# repro: noqa[REPRO-Dxxx]: reason`` marker that names the deep id —
a bare ``noqa`` never silences a whole-program finding (the finding
often points at code far from its cause, and a blanket marker there
would also eat future shallow findings).  The shallow engine skips its
staleness check for deep-only markers; this runner performs it instead,
and flags markers that mix deep and shallow ids (each layer must be
able to account for its own markers).
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Optional, Sequence

from repro.devtools.flow.base import deep_diag, deep_rule, is_deep_id
from repro.devtools.flow.parity import RULES as PARITY_RULES, ParityPass
from repro.devtools.flow.project import ProjectIndex
from repro.devtools.flow.rngflow import RULES as RNG_RULES, RngFlowPass
from repro.devtools.flow.stationarity import (
    RULES as STATIONARITY_RULES,
    StationarityPass,
)
from repro.devtools.lint.engine import (
    UNUSED_SUPPRESSION_ID,
    Diagnostic,
    LintReport,
    Rule,
    scan_noqa_markers,
)

__all__ = ["ALL_DEEP_RULES", "PASS_NAMES", "make_passes", "run_deep"]

MIXED_MARKER_RULE = deep_rule(
    "REPRO-D000",
    "mixed-suppression",
    "A noqa marker mixing deep (REPRO-Dxxx) and shallow rule ids cannot "
    "be staleness-checked by either layer alone.",
    "split into one marker per layer",
)

_PASS_FACTORIES = {
    "rng-taint": RngFlowPass,
    "stationarity": StationarityPass,
    "engine-parity": ParityPass,
}

#: Pass names in execution order (also the ``--pass`` vocabulary).
PASS_NAMES: tuple[str, ...] = tuple(_PASS_FACTORIES)

#: Every deep rule, for ``--format json`` rule descriptors.
ALL_DEEP_RULES: tuple[Rule, ...] = (
    MIXED_MARKER_RULE,
    *RNG_RULES,
    *STATIONARITY_RULES,
    *PARITY_RULES,
)


def make_passes(names: Optional[Sequence[str]] = None) -> list:
    """Instantiate the selected passes (all, in order, by default)."""
    selected = list(names) if names else list(PASS_NAMES)
    passes = []
    for name in selected:
        factory = _PASS_FACTORIES.get(name)
        if factory is None:
            known = ", ".join(PASS_NAMES)
            raise KeyError(f"unknown flow pass {name!r}; known: {known}")
        if factory not in [type(p) for p in passes]:
            passes.append(factory())
    return passes


def run_deep(
    index: ProjectIndex,
    pass_names: Optional[Sequence[str]] = None,
    *,
    passes: Optional[Sequence] = None,
) -> LintReport:
    """Run the interprocedural passes and apply deep suppressions."""
    active = list(passes) if passes is not None else make_passes(pass_names)
    found: list[Diagnostic] = []
    for flow_pass in active:
        found.extend(flow_pass.run(index))
    found = _apply_deep_suppressions(index, found)
    report = LintReport(diagnostics=found, files_checked=len(index.modules))
    report.sort()
    return report


def _apply_deep_suppressions(
    index: ProjectIndex, found: list[Diagnostic]
) -> list[Diagnostic]:
    by_path: dict[str, list[Diagnostic]] = {}
    for diagnostic in found:
        by_path.setdefault(diagnostic.path, []).append(diagnostic)
    modules_by_path = {m.path: m for m in index.modules.values()}
    out: list[Diagnostic] = []
    for module in index.modules.values():
        markers = scan_noqa_markers(module.source)
        deep_markers = {
            lineno: ids
            for lineno, (ids, _) in markers.items()
            if ids is not None and any(is_deep_id(i) for i in ids)
        }
        used: set[int] = set()
        for diagnostic in by_path.get(module.path, ()):
            ids = deep_markers.get(diagnostic.line)
            if ids is not None and diagnostic.rule in ids:
                used.add(diagnostic.line)
                out.append(replace(diagnostic, suppressed=True))
            else:
                out.append(diagnostic)
        for lineno, ids in sorted(deep_markers.items()):
            if not all(is_deep_id(i) for i in ids):
                out.append(
                    deep_diag(
                        MIXED_MARKER_RULE,
                        module,
                        _line_anchor(lineno),
                        f"suppression mixes deep and shallow rule ids "
                        f"({', '.join(sorted(ids))}) — split into one "
                        f"marker per layer",
                    )
                )
                continue
            if lineno not in used:
                out.append(
                    Diagnostic(
                        rule=UNUSED_SUPPRESSION_ID,
                        path=module.path,
                        line=lineno,
                        col=0,
                        message=(
                            f"suppression of {','.join(sorted(ids))} "
                            f"matches no deep diagnostic"
                        ),
                        fix_hint="delete the stale '# repro: noqa' marker",
                    )
                )
    # diagnostics whose path is outside the index (none today) pass through
    for path, diagnostics in by_path.items():
        if path not in modules_by_path:
            out.extend(diagnostics)
    return out


def _line_anchor(lineno: int) -> ast.AST:
    anchor = ast.Pass()
    anchor.lineno = lineno
    anchor.col_offset = 0
    return anchor
