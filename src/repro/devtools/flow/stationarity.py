"""Stationarity verification (``REPRO-D201``/``D202``/``D203``).

``ServingPolicy.stationary_decisions = True`` is the contract the
hybrid replay engine (``repro.experiments.fastpath``) fast-forwards on:
across a quiescent trace window the policy would return the same
decisions every step, so the engine may skip consulting it.  The
declaration is trusted — this pass verifies it statically, in both
directions:

* **D201** — a policy *declared* stationary has a reachable wall-clock
  read, an unguarded ``obs.now`` use, a mutation of ``self`` outside
  its declared ``stationary_state`` whitelist, or a module-global
  write.  Reachability walks the call graph from the decision surface
  (``target_mix`` fully; ``select_*_zone`` for temporal checks only —
  the engine counts every launch-loop entry as activity, so per-call
  mutation there cannot leak across a fast-forwarded window), skips
  statements guarded by ``if self.audit is not None`` (the fastpath
  additionally requires ``audit is None``), and never descends into
  ``telemetry/`` (the sanctioned observability seam).
* **D202** — a policy declared *non*-stationary where the same analysis
  conclusively finds no time dependence and no non-whitelisted
  mutation: the declaration is stricter than the code, giving up
  fast-forwarding for nothing.  Reported only when every call from the
  decision surface resolved (an unresolvable call could hide state).
* **D203** — a ``stationary_state`` whitelist entry no reachable code
  mutates: stale grandfathered state that would mask a future real
  mutation under the same name.

The whitelist is a ``stationary_state: frozenset[str]`` class attribute
(on policies *and* their helper classes, e.g. placers), unioned through
the MRO; listed attributes may be mutated by decision code because the
mutation is idempotent under repeated identical observations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.devtools.flow.base import deep_diag, deep_rule
from repro.devtools.flow.project import (
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    attr_chain,
)
from repro.devtools.lint.engine import Diagnostic

__all__ = ["RULES", "StationarityPass"]

VIOLATION_RULE = deep_rule(
    "REPRO-D201",
    "stationarity-violation",
    "The hybrid engine fast-forwards quiescent windows without calling "
    "policies that declare stationary_decisions = True; reachable "
    "wall-clock access, obs.now dependence, or non-whitelisted state "
    "mutation means skipped calls would have changed behaviour — the "
    "fast engines silently diverge from the discrete oracle.",
    "remove the time/state dependence, whitelist the attribute in "
    "stationary_state if its mutation is idempotent under identical "
    "observations, or declare stationary_decisions = False",
)
UNDERDECLARED_RULE = deep_rule(
    "REPRO-D202",
    "stationarity-underdeclared",
    "A policy declared non-stationary forces the hybrid engine to "
    "replay every step discretely; when analysis proves the decision "
    "surface stationary the declaration wastes the fast path.",
    "declare stationary_decisions = True (and whitelist any idempotent "
    "state in stationary_state)",
)
STALE_WHITELIST_RULE = deep_rule(
    "REPRO-D203",
    "stationarity-whitelist",
    "A stationary_state entry nothing mutates is grandfathered trust: "
    "a future, genuinely non-stationary mutation of that attribute "
    "would be silently accepted.",
    "delete the unused stationary_state entry",
)

RULES = (VIOLATION_RULE, UNDERDECLARED_RULE, STALE_WHITELIST_RULE)

POLICY_BASE = "ServingPolicy"
WHITELIST_ATTR = "stationary_state"
FLAG_ATTR = "stationary_decisions"
DECISION_SURFACE_FULL = ("target_mix",)
DECISION_SURFACE_TEMPORAL = ("select_spot_zone", "select_od_zone")
TELEMETRY_DIRS = ("telemetry/",)

_TIME_FNS = frozenset(
    {"time", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "time_ns"}
)
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

_MUTATING_METHODS = frozenset(
    {"add", "append", "appendleft", "clear", "discard", "extend",
     "extendleft", "insert", "pop", "popitem", "popleft", "remove",
     "reverse", "rotate", "setdefault", "sort", "update"}
)

_SAFE_BUILTINS = frozenset(
    {"abs", "all", "any", "bool", "dict", "divmod", "enumerate", "filter",
     "float", "frozenset", "getattr", "hasattr", "int", "isinstance",
     "issubclass", "iter", "len", "list", "map", "max", "min", "next",
     "print", "range", "repr", "reversed", "round", "set", "sorted",
     "str", "sum", "tuple", "zip"}
)


def _mentions_audit(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "audit":
            return True
        if isinstance(node, ast.Name) and node.id == "audit":
            return True
    return False


def _iter_unguarded(node: ast.AST) -> Iterator[ast.AST]:
    """All descendant nodes, skipping bodies of ``if ...audit...:``
    statements (their ``else`` branches still run with audit off)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.If) and _mentions_audit(child.test):
            for stmt in child.orelse:
                yield stmt
                yield from _iter_unguarded(stmt)
            continue
        yield child
        yield from _iter_unguarded(child)


@dataclass
class _Violation:
    kind: str  # "temporal" | "mutation"
    node: ast.AST
    message: str


@dataclass
class _FunctionAnalysis:
    violations: list[_Violation]
    #: (declaring class qname, attr) whitelist entries this fn used
    whitelist_used: set[tuple[str, str]]
    conclusive: bool


class StationarityPass:
    """Cross-check ``stationary_decisions`` declarations both ways."""

    name = "stationarity"
    rules = RULES

    def run(self, index: ProjectIndex) -> list[Diagnostic]:
        self._index = index
        self._analyses: dict[str, _FunctionAnalysis] = {}
        out: list[Diagnostic] = []
        policies = self._policy_classes(index)
        used_whitelist: set[tuple[str, str]] = set()
        # function qname -> sorted policy names it serves, per check depth
        full_owners: dict[str, set[str]] = {}
        temporal_owners: dict[str, set[str]] = {}
        for cls, declared in policies:
            full, temporal = self._surface_reachability(cls)
            analyses = {
                q: self._analyze_function(q) for q in full | temporal
            }
            conclusive = all(a.conclusive for a in analyses.values())
            violations: list[tuple[str, _Violation]] = []
            for qname in sorted(full | temporal):
                analysis = analyses[qname]
                for violation in analysis.violations:
                    if violation.kind == "mutation" and qname not in full:
                        continue  # select surface: mutation-exempt
                    violations.append((qname, violation))
                if qname in full:
                    used_whitelist |= analysis.whitelist_used
            if declared:
                for qname in full:
                    full_owners.setdefault(qname, set()).add(cls.name)
                for qname in temporal - full:
                    temporal_owners.setdefault(qname, set()).add(cls.name)
            elif not violations and conclusive and (full or temporal):
                module = index.modules[cls.module]
                out.append(
                    deep_diag(
                        UNDERDECLARED_RULE,
                        module,
                        cls.node,
                        f"policy {cls.name} declares "
                        f"{FLAG_ATTR} = False but its decision surface "
                        f"is conclusively stationary (no time dependence "
                        f"or non-whitelisted mutation found)",
                    )
                )
        out.extend(self._emit_violations(full_owners, temporal_owners))
        out.extend(self._stale_whitelist(policies, used_whitelist))
        return out

    # ------------------------------------------------------------------
    # Policy discovery and reachability
    # ------------------------------------------------------------------
    def _policy_classes(
        self, index: ProjectIndex
    ) -> list[tuple[ClassInfo, bool]]:
        out = []
        for qname in sorted(index.classes):
            cls = index.classes[qname]
            if cls.name == POLICY_BASE:
                continue
            ancestry = index.mro(qname)
            if not any(
                base.rsplit(".", 1)[-1] == POLICY_BASE
                for info in ancestry
                for base in info.bases
            ):
                continue
            if index.lookup_method(qname, "target_mix") is None:
                continue  # abstract intermediate
            declared = False
            flag = index.class_attr(qname, FLAG_ATTR)
            if isinstance(flag, ast.Constant) and isinstance(flag.value, bool):
                declared = flag.value
            out.append((cls, declared))
        return out

    def _surface_reachability(
        self, cls: ClassInfo
    ) -> tuple[set[str], set[str]]:
        index = self._index
        full_entries = [
            m.qname
            for name in DECISION_SURFACE_FULL
            if (m := index.lookup_method(cls.qname, name)) is not None
        ]
        temporal_entries = [
            m.qname
            for name in DECISION_SURFACE_TEMPORAL
            if (m := index.lookup_method(cls.qname, name)) is not None
        ]
        full = self._guarded_reachable(full_entries)
        temporal = self._guarded_reachable(temporal_entries)
        return full, temporal

    def _guarded_reachable(self, entries: list[str]) -> set[str]:
        index = self._index
        seen: set[str] = set()
        queue = list(entries)
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            fn = index.functions.get(current)
            if fn is None:
                continue
            if index.modules[fn.module].in_dir(*TELEMETRY_DIRS):
                continue
            seen.add(current)
            for node in _iter_unguarded(fn.node):
                if isinstance(node, ast.Call):
                    site = index.resolve_call(fn, node)
                    queue.extend(t for t in site.targets if t not in seen)
        return seen

    # ------------------------------------------------------------------
    # Per-function analysis (cached: shared helpers analyzed once)
    # ------------------------------------------------------------------
    def _analyze_function(self, qname: str) -> _FunctionAnalysis:
        cached = self._analyses.get(qname)
        if cached is not None:
            return cached
        index = self._index
        fn = index.functions[qname]
        violations: list[_Violation] = []
        whitelist_used: set[tuple[str, str]] = set()
        conclusive = True
        whitelist = (
            self._effective_whitelist(fn.owner) if fn.owner else {}
        )
        obs_params = {
            p
            for p in fn.param_names
            if p == "obs"
            or (fn.param_types.get(p, "")).rsplit(".", 1)[-1] == "Observation"
        }
        module = index.modules[fn.module]
        for node in _iter_unguarded(fn.node):
            if isinstance(node, ast.Call):
                violations.extend(self._temporal_call(fn, node))
                mutation, ok = self._mutating_call(
                    fn, node, whitelist, whitelist_used
                )
                violations.extend(mutation)
                conclusive = conclusive and ok
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr == "now"
                    and isinstance(node.value, ast.Name)
                    and node.value.id in obs_params
                ):
                    violations.append(
                        _Violation(
                            "temporal",
                            node,
                            f"{fn.name}() reads obs.now outside an "
                            f"audit guard",
                        )
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                violations.extend(
                    self._mutating_assign(
                        fn, module, node, whitelist, whitelist_used
                    )
                )
            elif isinstance(node, ast.Global):
                violations.append(
                    _Violation(
                        "mutation",
                        node,
                        f"{fn.name}() declares global "
                        f"{', '.join(node.names)}",
                    )
                )
        analysis = _FunctionAnalysis(violations, whitelist_used, conclusive)
        self._analyses[qname] = analysis
        return analysis

    def _effective_whitelist(
        self, cls_qname: Optional[str]
    ) -> dict[str, str]:
        """attr -> declaring class qname, unioned through the MRO."""
        out: dict[str, str] = {}
        if cls_qname is None:
            return out
        for info in self._index.mro(cls_qname):
            expr = info.class_attrs.get(WHITELIST_ATTR)
            for attr in _parse_whitelist(expr):
                out.setdefault(attr, info.qname)
        return out

    def _temporal_call(
        self, fn: FunctionInfo, node: ast.Call
    ) -> list[_Violation]:
        chain = attr_chain(node.func)
        if len(chain) >= 2 and chain[-2] == "time" and chain[-1] in _TIME_FNS:
            return [
                _Violation(
                    "temporal",
                    node,
                    f"{fn.name}() reads the wall clock via "
                    f"{'.'.join(chain)}()",
                )
            ]
        if chain and chain[-1] in _DATETIME_FNS and any(
            part in ("datetime", "date") for part in chain[:-1]
        ):
            return [
                _Violation(
                    "temporal",
                    node,
                    f"{fn.name}() reads the wall clock via "
                    f"{'.'.join(chain)}()",
                )
            ]
        return []

    def _mutating_call(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        whitelist: dict[str, str],
        whitelist_used: set[tuple[str, str]],
    ) -> tuple[list[_Violation], bool]:
        chain = attr_chain(node.func)
        module = self._index.modules[fn.module]
        if not chain:
            return [], True
        if chain[0] == "self":
            if len(chain) == 2:
                resolved = (
                    fn.owner is not None
                    and self._index.lookup_method(fn.owner, chain[1])
                    is not None
                )
                return [], resolved
            if chain[-1] in _MUTATING_METHODS:
                attr = chain[1]
                if len(chain) == 3 and attr in whitelist:
                    whitelist_used.add((whitelist[attr], attr))
                    return [], True
                target = ".".join(chain[:-1])
                return [
                    _Violation(
                        "mutation",
                        node,
                        f"{fn.name}() mutates {target} via "
                        f".{chain[-1]}() (not in stationary_state)",
                    )
                ], True
            return [], True
        if len(chain) == 1:
            if chain[0] in _SAFE_BUILTINS:
                return [], True
            site = self._index.resolve_call(fn, node)
            local_env = fn.param_names
            resolved = bool(site.targets) or site.external is not None
            unresolved_local = (
                not resolved
                and chain[0] not in local_env
                and chain[0] not in module.defs
            )
            # unresolved locals (callbacks passed in, comprehension
            # vars) are opaque: mark inconclusive rather than guess
            return [], not unresolved_local or chain[0] in module.imports
        if chain[-1] in _MUTATING_METHODS and chain[0] in module.defs:
            value = module.module_assigns.get(chain[0])
            if value is not None and _is_mutable_module_value(value):
                return [
                    _Violation(
                        "mutation",
                        node,
                        f"{fn.name}() mutates module-global "
                        f"{chain[0]!r} via .{chain[-1]}()",
                    )
                ], True
        return [], True

    def _mutating_assign(
        self,
        fn: FunctionInfo,
        module,
        node: ast.Assign | ast.AugAssign | ast.AnnAssign,
        whitelist: dict[str, str],
        whitelist_used: set[tuple[str, str]],
    ) -> list[_Violation]:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        out: list[_Violation] = []
        for target in targets:
            base = target
            via_item = False
            while isinstance(base, ast.Subscript):
                base = base.value
                via_item = True
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                attr = base.attr
                if attr in whitelist:
                    whitelist_used.add((whitelist[attr], attr))
                    continue
                how = "an item of " if via_item else ""
                out.append(
                    _Violation(
                        "mutation",
                        node,
                        f"{fn.name}() writes {how}self.{attr} "
                        f"(not in stationary_state)",
                    )
                )
            elif (
                via_item
                and isinstance(base, ast.Name)
                and base.id in module.module_assigns
                and _is_mutable_module_value(module.module_assigns[base.id])
            ):
                out.append(
                    _Violation(
                        "mutation",
                        node,
                        f"{fn.name}() writes an item of module-global "
                        f"{base.id!r}",
                    )
                )
        return out

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit_violations(
        self,
        full_owners: dict[str, set[str]],
        temporal_owners: dict[str, set[str]],
    ) -> list[Diagnostic]:
        index = self._index
        out: list[Diagnostic] = []
        emitted: set[tuple[str, int, str]] = set()
        for owners_map, kinds in (
            (full_owners, ("temporal", "mutation")),
            (temporal_owners, ("temporal",)),
        ):
            for qname in sorted(owners_map):
                analysis = self._analyses[qname]
                fn = index.functions[qname]
                module = index.modules[fn.module]
                policies = ", ".join(sorted(owners_map[qname]))
                for violation in analysis.violations:
                    if violation.kind not in kinds:
                        continue
                    key = (
                        module.path,
                        getattr(violation.node, "lineno", 1),
                        violation.message,
                    )
                    if key in emitted:
                        continue
                    emitted.add(key)
                    out.append(
                        deep_diag(
                            VIOLATION_RULE,
                            module,
                            violation.node,
                            f"{violation.message} — reachable from "
                            f"stationary policy {policies}",
                        )
                    )
        return out

    def _stale_whitelist(
        self,
        policies: list[tuple[ClassInfo, bool]],
        used: set[tuple[str, str]],
    ) -> list[Diagnostic]:
        index = self._index
        out: list[Diagnostic] = []
        any_stationary = any(declared for _, declared in policies)
        for qname in sorted(index.classes):
            cls = index.classes[qname]
            expr = cls.class_attrs.get(WHITELIST_ATTR)
            if expr is None:
                continue
            for attr in sorted(_parse_whitelist(expr)):
                if (qname, attr) in used:
                    continue
                if not any_stationary:
                    continue  # nothing analyzed, usage unknowable
                module = index.modules[cls.module]
                out.append(
                    deep_diag(
                        STALE_WHITELIST_RULE,
                        module,
                        expr,
                        f"stationary_state entry {attr!r} on {cls.name} "
                        f"is never mutated by any reachable decision "
                        f"code — stale whitelist entry",
                    )
                )
        return out


def _parse_whitelist(expr: Optional[ast.expr]) -> set[str]:
    """Entries of a ``stationary_state = frozenset({...})`` literal."""
    if expr is None:
        return set()
    inner: Optional[ast.expr] = None
    if isinstance(expr, ast.Call):
        chain = attr_chain(expr.func)
        if chain == ["frozenset"]:
            inner = expr.args[0] if expr.args else None
    elif isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
        inner = expr
    if inner is None:
        return set()
    if not isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
        return set()
    return {
        e.value
        for e in inner.elts
        if isinstance(e, ast.Constant) and isinstance(e.value, str)
    }


def _is_mutable_module_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        return bool(chain) and chain[-1] in (
            "dict", "list", "set", "bytearray", "deque", "defaultdict",
            "Counter", "OrderedDict",
        )
    return False
