"""Shared plumbing for the interprocedural (``--deep``) passes.

Deep findings reuse the shallow engine's :class:`Diagnostic` and
:class:`Rule` types so they flow through the same report, baseline, and
JSON machinery.  Deep rule ids live in the reserved ``REPRO-Dxxx``
range; a ``# repro: noqa[REPRO-Dxxx]: reason`` marker must name the
deep id explicitly (a bare ``noqa`` never silences whole-program
findings), and markers must not mix deep and shallow ids — each layer
checks staleness of its own markers.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.devtools.lint.engine import Diagnostic, Rule
from repro.devtools.flow.project import ModuleInfo

__all__ = ["DEEP_ID_PREFIX", "deep_diag", "deep_rule", "is_deep_id"]

#: Deep rule ids all start with this prefix — the shallow engine uses it
#: to leave staleness checking of deep-only markers to the flow runner.
DEEP_ID_PREFIX = "REPRO-D"


def is_deep_id(rule_id: str) -> bool:
    return rule_id.startswith(DEEP_ID_PREFIX)


def deep_rule(
    rule_id: str, name: str, rationale: str, fix_hint: str
) -> Rule:
    """A descriptor-only :class:`Rule` (deep passes do their own
    traversal; the instance carries id/name/rationale for reports)."""
    rule = Rule()
    rule.id = rule_id
    rule.name = name
    rule.rationale = rationale
    rule.fix_hint = fix_hint
    return rule


def deep_diag(
    rule: Rule,
    module: ModuleInfo,
    node: Optional[ast.AST],
    message: str,
    *,
    fix_hint: Optional[str] = None,
) -> Diagnostic:
    """One deep finding anchored in ``module`` (at ``node`` or line 1)."""
    return Diagnostic(
        rule=rule.id,
        path=module.path,
        line=getattr(node, "lineno", 1) if node is not None else 1,
        col=getattr(node, "col_offset", 0) if node is not None else 0,
        message=message,
        fix_hint=rule.fix_hint if fix_hint is None else fix_hint,
    )
