"""The multi-tenant control plane: N services, one shared cloud.

:class:`ControlPlane` is the fleet-scale counterpart of
:class:`~repro.serving.service.SkyService`: it takes a declarative
:class:`~repro.control.spec.DeploymentSpec`, wires every tenant's
controller and client onto one engine and one shared
:class:`~repro.cloud.provider.SimCloud` behind a
:class:`~repro.control.broker.CapacityBroker`, runs the clock, and
rolls everything up into a :class:`FleetReport` — per-tenant SLO and
cost plus the fleet-wide bill — as a canonical, byte-stable JSON
artifact.

Determinism contract: the fleet is a function of ``(deployment, trace,
seed)``.  All randomness flows through the run's
:class:`~repro.sim.rng.RngRegistry` streams — ``cloud``, one inference
stream per tenant, ``control-arbitration`` for the broker — and
workload generation is seeded per tenant via ``derive_seed(seed,
"workload:<name>")``.  A single-tenant deployment in ``fair_share``
mode uses the exact stream names of a :class:`SkyService` run and the
broker's admission degenerates to "admit when there is room", so it
reproduces the single-service results bit for bit (the equivalence is
pinned by ``tests/control/test_equivalence.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.cloud.catalog import Catalog
from repro.cloud.network import NetworkModel, default_network
from repro.cloud.provider import CloudConfig, SimCloud
from repro.cloud.topology import Topology
from repro.cloud.traces import SpotTrace
from repro.control.broker import CapacityBroker
from repro.control.spec import DeploymentSpec, TenantSpec
from repro.core import (
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.serving.client import ServiceClient
from repro.serving.controller import ServiceController
from repro.serving.inference import (
    llama2_70b_profile,
    opt_6_7b_profile,
    vicuna_13b_profile,
)
from repro.serving.policy import ServingPolicy
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry, derive_seed
from repro.telemetry.events import EventBus, TenantCostSnapshot
from repro.workloads import arena_workload, maf_workload, poisson_workload
from repro.workloads.request import Workload

if TYPE_CHECKING:
    from repro.chaos.injector import ChaosInjector
    from repro.chaos.overlay import CompiledScenario

__all__ = ["ControlPlane", "FleetReport", "TenantReport", "REPORT_SCHEMA"]

REPORT_SCHEMA = "repro.control/v1"

_PROFILES = {
    "llama2-70b": llama2_70b_profile,
    "opt-6.7b": opt_6_7b_profile,
    "vicuna-13b": vicuna_13b_profile,
}


def _round(value: float, digits: int = 6) -> float:
    """Float normalisation for byte-stable artifacts (0.0 absorbs -0.0)."""
    return round(float(value), digits) + 0.0


def make_tenant_policy(tenant: TenantSpec, zones: list[str]) -> ServingPolicy:
    """Instantiate a tenant's serving policy over its allowed zones."""
    rp = tenant.service.replica_policy
    if tenant.policy == "SpotHedge":
        return spothedge(
            zones,
            num_overprovision=rp.num_overprovision,
            base_ondemand_replicas=rp.base_ondemand_fallback_replicas,
        )
    if tenant.policy == "EvenSpread":
        return even_spread_policy(zones)
    if tenant.policy == "RoundRobin":
        return round_robin_policy(zones)
    if tenant.policy == "OnDemand":
        return OnDemandOnlyPolicy(zones)
    raise ValueError(f"unknown tenant policy {tenant.policy!r}")


def make_tenant_workload(
    tenant: TenantSpec, duration: float, root_seed: int
) -> Workload:
    """Generate a tenant's workload, seeded per tenant from the root."""
    seed = derive_seed(root_seed, f"workload:{tenant.name}")
    if tenant.workload == "poisson":
        return poisson_workload(duration, rate=tenant.rate, seed=seed)
    if tenant.workload == "arena":
        return arena_workload(
            duration, base_rate=tenant.rate, max_output_tokens=800, seed=seed
        )
    if tenant.workload == "maf":
        return maf_workload(duration, base_rate=tenant.rate, seed=seed)
    raise ValueError(f"unknown workload {tenant.workload!r}")


@dataclass(frozen=True)
class TenantReport:
    """One tenant's slice of a fleet run."""

    tenant: str
    policy: str
    priority: int
    qps_share: float
    total_requests: int
    completed: int
    failed: int
    failure_rate: float
    latency_p50: float
    latency_p90: float
    latency_p99: float
    availability: float
    preemptions: int
    launch_failures: int
    spot_cost: float
    od_cost: float
    admitted: int
    rejected: int
    evictions_won: int
    evictions_suffered: int

    @property
    def total_cost(self) -> float:
        return self.spot_cost + self.od_cost

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "priority": self.priority,
            "qps_share": _round(self.qps_share),
            "requests": {
                "total": self.total_requests,
                "completed": self.completed,
                "failed": self.failed,
                "failure_rate": _round(self.failure_rate),
            },
            "latency": {
                "p50": _round(self.latency_p50),
                "p90": _round(self.latency_p90),
                "p99": _round(self.latency_p99),
            },
            "availability": _round(self.availability),
            "preemptions": self.preemptions,
            "launch_failures": self.launch_failures,
            "cost": {
                "spot": _round(self.spot_cost),
                "on_demand": _round(self.od_cost),
                "total": _round(self.total_cost),
            },
            "admission": {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "evictions_won": self.evictions_won,
                "evictions_suffered": self.evictions_suffered,
            },
        }


@dataclass(frozen=True)
class FleetReport:
    """The canonical roll-up of one multi-tenant run."""

    deployment: str
    admission: str
    trace: str
    scenario: Optional[str]
    seed: int
    duration: float
    tenants: tuple[TenantReport, ...]
    fleet_spot_cost: float
    fleet_od_cost: float

    @property
    def fleet_total_cost(self) -> float:
        return self.fleet_spot_cost + self.fleet_od_cost

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.tenant == name:
                return report
        raise KeyError(f"no tenant {name!r} in fleet report")

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "deployment": self.deployment,
            "admission": self.admission,
            "trace": self.trace,
            "scenario": self.scenario,
            "seed": self.seed,
            "duration": _round(self.duration),
            "tenants": {r.tenant: r.to_dict() for r in self.tenants},
            "fleet": {
                "cost": {
                    "spot": _round(self.fleet_spot_cost),
                    "on_demand": _round(self.fleet_od_cost),
                    "total": _round(self.fleet_total_cost),
                },
                "preemptions": sum(r.preemptions for r in self.tenants),
                "rejected": sum(r.rejected for r in self.tenants),
                "evictions": sum(r.evictions_won for r in self.tenants),
            },
        }

    def to_json(self) -> str:
        """Canonical byte-stable JSON (sorted keys, rounded floats)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


class ControlPlane:
    """Run a deployment's tenants against one shared simulated cloud."""

    def __init__(
        self,
        deployment: DeploymentSpec,
        trace: SpotTrace,
        *,
        topology: Optional[Topology] = None,
        catalog: Optional[Catalog] = None,
        cloud_config: Optional[CloudConfig] = None,
        network: Optional[NetworkModel] = None,
        client_region: str = "aws:us-west-2",
        seed: int = 0,
        telemetry: Optional[EventBus] = None,
    ) -> None:
        self.deployment = deployment
        self.seed = seed
        self.client_region = client_region
        self.rng = RngRegistry(seed)
        self.engine = SimulationEngine(telemetry=telemetry)
        self.telemetry = self.engine.telemetry
        self._compiled: Optional["CompiledScenario"] = None
        if deployment.scenario is not None:
            # Chaos arms against the shared cloud: every tenant feels it.
            from repro.chaos import load_scenario
            from repro.chaos.overlay import compile_scenario

            scenario_spec = load_scenario(deployment.scenario)
            self._compiled = compile_scenario(scenario_spec, trace, root_seed=seed)
            trace = self._compiled.trace
        self.trace = trace
        self.network = network or default_network()
        if self._compiled is not None and self._compiled.network_degradations:
            from repro.chaos.injector import DegradedNetworkModel

            self.network = DegradedNetworkModel(
                self.network, self.engine, self._compiled.network_degradations
            )
        self.cloud = SimCloud(
            self.engine,
            trace,
            topology=topology,
            catalog=catalog,
            config=cloud_config,
            rng=self.rng,
        )
        self.broker = CapacityBroker(
            self.cloud,
            deployment.tenants,
            mode=deployment.admission,
            rng=self.rng,
            bus=self.telemetry,
        )
        self.controllers: dict[str, ServiceController] = {}
        self.clients: dict[str, ServiceClient] = {}
        single = len(deployment.tenants) == 1
        for tenant in deployment.tenants:
            allowed = tenant.service.resources.allowed_zones(self.cloud.topology)
            spot_zones = [z.id for z in allowed if z.id in trace.zone_ids]
            policy_zones = spot_zones or [z.id for z in allowed]
            if not policy_zones:
                raise ValueError(
                    f"tenant {tenant.name!r} allows no zones in this topology"
                )
            policy = make_tenant_policy(tenant, policy_zones)
            # Single-tenant deployments use the SkyService stream name,
            # which is what makes N=1 reproduce SkyService bit for bit.
            stream = "inference" if single else f"inference:{tenant.name}"
            self.controllers[tenant.name] = ServiceController(
                self.engine,
                self.broker.view(tenant.name),
                tenant.service,
                policy,
                _PROFILES[tenant.profile](),
                network=self.network,
                rng=self.rng.stream(stream),
                client_region=client_region,
            )
        self.injector: Optional["ChaosInjector"] = None
        if self._compiled is not None:
            from repro.chaos.injector import ChaosInjector

            self.injector = ChaosInjector(
                self._compiled, self.engine, self.cloud, root_seed=seed
            )
            self.injector.arm()
        self._ran_for: Optional[float] = None

    def run(self, duration: Optional[float] = None) -> FleetReport:
        """Serve every tenant's workload for ``duration`` seconds
        (default: the deployment's ``hours``) and report."""
        if duration is None:
            duration = self.deployment.hours * 3600.0
        for tenant in self.deployment.tenants:
            workload = make_tenant_workload(tenant, duration, self.seed)
            self.clients[tenant.name] = ServiceClient(
                self.controllers[tenant.name],
                workload,
                client_region=self.client_region,
            )
        for tenant in self.deployment.tenants:
            self.controllers[tenant.name].start()
            self.clients[tenant.name].start()
        self.engine.run_until(duration)
        self._ran_for = duration
        return self.report(duration)

    def status(self) -> dict[str, list[dict[str, object]]]:
        """``sky serve status`` across every tenant."""
        return {name: c.status() for name, c in self.controllers.items()}

    def report(self, duration: Optional[float] = None) -> FleetReport:
        if duration is None:
            duration = self._ran_for
        if duration is None:
            raise RuntimeError("run() must be called before report()")
        now = self.engine.now
        tenant_reports = []
        for tenant in self.deployment.tenants:
            client = self.clients.get(tenant.name)
            if client is None:
                raise RuntimeError(f"tenant {tenant.name!r} never ran")
            stats = client.stats()
            controller = self.controllers[tenant.name]
            cost = self.broker.billing.tenant_breakdown(tenant.name, now)
            if self.telemetry.enabled:
                self.telemetry.emit(
                    TenantCostSnapshot(
                        time=now,
                        tenant=tenant.name,
                        spot=cost.spot,
                        on_demand=cost.on_demand,
                        total=cost.total,
                    )
                )
            n_tar = controller.autoscaler.n_tar
            latency = stats.latency
            tenant_reports.append(
                TenantReport(
                    tenant=tenant.name,
                    policy=tenant.policy,
                    priority=tenant.priority,
                    qps_share=tenant.qps_share,
                    total_requests=stats.total_requests,
                    completed=stats.completed,
                    failed=stats.failed,
                    failure_rate=stats.failure_rate,
                    latency_p50=latency.p50 if latency else 0.0,
                    latency_p90=latency.p90 if latency else 0.0,
                    latency_p99=latency.p99 if latency else 0.0,
                    availability=controller.ready_total_series.fraction_at_least(
                        max(n_tar, 1), 0.0, duration
                    ),
                    preemptions=int(controller.preemption_count.value),
                    launch_failures=int(controller.launch_failure_count.value),
                    spot_cost=cost.spot,
                    od_cost=cost.on_demand,
                    admitted=self.broker.admitted[tenant.name],
                    rejected=self.broker.rejected[tenant.name],
                    evictions_won=self.broker.evictions_won[tenant.name],
                    evictions_suffered=self.broker.evictions_suffered[tenant.name],
                )
            )
        fleet_cost = self.broker.billing.breakdown(now)
        return FleetReport(
            deployment=self.deployment.name,
            admission=self.deployment.admission,
            trace=self.trace.name,
            scenario=self.deployment.scenario,
            seed=self.seed,
            duration=duration,
            tenants=tuple(tenant_reports),
            fleet_spot_cost=fleet_cost.spot,
            fleet_od_cost=fleet_cost.on_demand,
        )
