"""Shared-capacity admission control across tenants.

The :class:`CapacityBroker` sits between every tenant's service
controller and the one shared :class:`~repro.cloud.provider.SimCloud`.
Controllers are handed a :class:`TenantCloudView` — an object with the
same launch/terminate surface as the cloud — so they run completely
unmodified; the broker meters per-zone spot capacity across tenants and
decides, per launch request, between three outcomes:

* **admit** — delegate to the cloud and record the capacity held;
* **reject** — deny the request for quota reasons.  The denial uses
  :meth:`SimCloud.reject_instance`, which fails after
  ``failure_detect_delay`` exactly like InsufficientCapacity, so the
  tenant's policy reacts with its ordinary Alg. 1 bookkeeping;
* **passthrough** — the zone has no free room anyway; the cloud's own
  no-capacity failure path answers.

Two admission modes:

* ``fair_share`` — per-zone quotas proportional to each tenant's
  ``qps_share``, work-conserving: a tenant may exceed its quota
  whenever the free room is larger than the unused quota reserved for
  everyone else.  With one tenant this degenerates to "admit whenever
  there is room" — bit-for-bit the broker-less behaviour.
* ``strict_priority`` — higher-priority tenants always get room; when a
  zone is full and a strictly-lower-priority tenant holds spot capacity
  there, the broker evicts one victim via :meth:`SimCloud.reclaim`
  (the victim experiences an ordinary preemption).

All arbitration is deterministic: quota remainders and eviction
tie-breaks follow a fixed tenant permutation drawn once from the
``control-arbitration`` stream of the run's
:class:`~repro.sim.rng.RngRegistry` (seeded via ``derive_seed``), never
from container iteration order.

On-demand capacity is not quota-metered (the paper treats it as
plentiful); on-demand launches pass straight through, but are still
billed to the requesting tenant through the :class:`SharedBillingMeter`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.cloud.billing import BillingMeter, CostBreakdown
from repro.cloud.instance import Instance, InstanceCallbacks
from repro.cloud.provider import SimCloud
from repro.control.spec import ADMISSION_MODES, TenantSpec
from repro.sim.rng import RngRegistry
from repro.telemetry.events import (
    NULL_BUS,
    EventBus,
    TenantAdmission,
    TenantEviction,
)

__all__ = ["CapacityBroker", "SharedBillingMeter", "TenantCloudView"]


class SharedBillingMeter(BillingMeter):
    """The fleet bill plus a per-tenant child meter for each tenant.

    Installed as the shared cloud's ``billing`` so every instance is
    tracked globally as before; while a tenant's launch request is in
    flight the broker points ``charge_to`` at that tenant, and the
    instance lands in the tenant's child meter too.  Chaos price
    surcharges are forwarded to every child, so per-tenant costs sum to
    the fleet total under :class:`~repro.chaos.spec.PriceSurge` as well.
    """

    def __init__(self, tenants: Sequence[str]) -> None:
        super().__init__()
        self.tenant_meters: dict[str, BillingMeter] = {
            name: BillingMeter() for name in tenants
        }
        self._charge_to: Optional[str] = None

    def charge_to(self, tenant: Optional[str]) -> None:
        """Attribute subsequently-tracked instances to ``tenant``."""
        if tenant is not None and tenant not in self.tenant_meters:
            raise KeyError(f"unknown tenant {tenant!r}")
        self._charge_to = tenant

    def track(self, instance: Instance) -> None:
        super().track(instance)
        if self._charge_to is not None:
            self.tenant_meters[self._charge_to].track(instance)

    def add_surcharge(
        self,
        start: float,
        end: float,
        zones,
        multiplier: float,
    ) -> None:
        super().add_surcharge(start, end, zones, multiplier)
        for meter in self.tenant_meters.values():
            meter.add_surcharge(start, end, zones, multiplier)

    def tenant_breakdown(self, tenant: str, now: float) -> CostBreakdown:
        """One tenant's accrued cost split by market."""
        return self.tenant_meters[tenant].breakdown(now)


class TenantCloudView:
    """The cloud as one tenant sees it.

    Exposes exactly the surface :class:`ServiceController` uses —
    ``topology``/``trace``/``catalog``/``config`` plus
    ``request_instance``/``terminate`` — with launches routed through
    the broker's admission control and terminations releasing the
    tenant's capacity accounting.
    """

    def __init__(self, broker: "CapacityBroker", tenant: str) -> None:
        self._broker = broker
        self.tenant = tenant
        cloud = broker.cloud
        self.topology = cloud.topology
        self.trace = cloud.trace
        self.catalog = cloud.catalog
        self.config = cloud.config
        self.engine = cloud.engine

    def request_instance(
        self,
        zone_id: str,
        instance_type_name: str,
        *,
        spot: bool,
        callbacks: Optional[InstanceCallbacks] = None,
    ) -> Instance:
        return self._broker.request(
            self.tenant,
            zone_id,
            instance_type_name,
            spot=spot,
            callbacks=callbacks,
        )

    def terminate(self, instance: Instance) -> None:
        self._broker.release(instance)
        self._broker.cloud.terminate(instance)


class CapacityBroker:
    """Meters per-zone spot capacity across tenants."""

    def __init__(
        self,
        cloud: SimCloud,
        tenants: Sequence[TenantSpec],
        *,
        mode: str = "fair_share",
        rng: RngRegistry,
        bus: EventBus = NULL_BUS,
    ) -> None:
        if mode not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {mode!r}; expected one of {ADMISSION_MODES}"
            )
        if not tenants:
            raise ValueError("broker needs at least one tenant")
        self.cloud = cloud
        self.mode = mode
        self.bus = bus
        self._tenants: dict[str, TenantSpec] = {t.name: t for t in tenants}
        names = [t.name for t in tenants]
        # Seeded arbitration order: one permutation of the tenant list
        # drawn from a dedicated named stream.  Quota remainders and
        # eviction tie-breaks follow it, so arbitration is a function of
        # (seed, deployment) alone.
        order = rng.stream("control-arbitration").permutation(len(names))
        self.arbitration_rank: dict[str, int] = {
            names[int(i)]: pos for pos, i in enumerate(order)
        }
        self._weight_total = sum(t.qps_share for t in tenants)
        self.billing = SharedBillingMeter(names)
        cloud.billing = self.billing
        #: Per-tenant, per-zone spot instances currently holding capacity.
        self._holdings: dict[str, dict[str, dict[int, Instance]]] = {
            name: {zone: {} for zone in cloud.trace.zone_ids} for name in names
        }
        #: instance id -> (tenant, zone) for O(1) release on any exit path.
        self._owner: dict[int, tuple[str, str]] = {}
        self.admitted: dict[str, int] = {name: 0 for name in names}
        self.rejected: dict[str, int] = {name: 0 for name in names}
        self.evictions_won: dict[str, int] = {name: 0 for name in names}
        self.evictions_suffered: dict[str, int] = {name: 0 for name in names}

    def view(self, tenant: str) -> TenantCloudView:
        """The cloud facade handed to ``tenant``'s controller."""
        if tenant not in self._tenants:
            raise KeyError(f"unknown tenant {tenant!r}")
        return TenantCloudView(self, tenant)

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    def spot_holdings(self, tenant: str, zone_id: str) -> int:
        """Spot instances ``tenant`` currently holds in ``zone_id``."""
        return len(self._holdings[tenant].get(zone_id, ()))

    def release(self, instance: Instance) -> None:
        """Drop the capacity accounting for ``instance`` (idempotent)."""
        owner = self._owner.pop(instance.id, None)
        if owner is not None:
            tenant, zone = owner
            self._holdings[tenant][zone].pop(instance.id, None)

    def _hold(self, tenant: str, zone_id: str, instance: Instance) -> None:
        self._holdings[tenant][zone_id][instance.id] = instance
        self._owner[instance.id] = (tenant, zone_id)

    def quotas(self, zone_id: str) -> dict[str, int]:
        """Fair-share spot quotas for ``zone_id`` at the current time.

        Floor of each tenant's proportional share of the zone's current
        capacity; leftover slots go one each to tenants in arbitration
        order.
        """
        capacity = int(
            self.cloud.trace.capacity_at(zone_id, self.cloud.engine.now)
        )
        quotas: dict[str, int] = {}
        for name, tenant in self._tenants.items():
            quotas[name] = int(capacity * tenant.qps_share / self._weight_total)
        remainder = capacity - sum(quotas.values())
        if remainder > 0:
            by_rank = sorted(quotas, key=lambda n: self.arbitration_rank[n])
            for name in by_rank[:remainder]:
                quotas[name] += 1
        return quotas

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def request(
        self,
        tenant: str,
        zone_id: str,
        instance_type_name: str,
        *,
        spot: bool,
        callbacks: Optional[InstanceCallbacks] = None,
    ) -> Instance:
        """Admission-controlled counterpart of ``request_instance``."""
        callbacks = callbacks or InstanceCallbacks()
        if not spot or zone_id not in self._holdings[tenant]:
            # On-demand is not metered; unknown zones get the cloud's
            # own KeyError.  Both still bill to the tenant.
            return self._delegate(
                tenant, zone_id, instance_type_name, spot=spot, callbacks=callbacks
            )
        room = self.cloud.spot_room(zone_id)
        if room <= 0:
            if self.mode == "strict_priority":
                victim = self._find_victim(tenant, zone_id)
                if victim is not None:
                    self._evict(tenant, zone_id, victim)
                    return self._admit(
                        tenant,
                        zone_id,
                        instance_type_name,
                        spot=spot,
                        callbacks=callbacks,
                    )
            # No room and nobody to evict: the cloud's natural
            # InsufficientCapacity path answers.
            self._emit_admission(tenant, zone_id, "passthrough")
            return self._delegate(
                tenant, zone_id, instance_type_name, spot=spot, callbacks=callbacks
            )
        if self.mode == "fair_share" and not self._fair_share_admit(
            tenant, zone_id, room
        ):
            self.rejected[tenant] += 1
            self._emit_admission(tenant, zone_id, "rejected")
            self.billing.charge_to(tenant)
            try:
                return self.cloud.reject_instance(
                    zone_id, instance_type_name, spot=spot, callbacks=callbacks
                )
            finally:
                self.billing.charge_to(None)
        return self._admit(
            tenant, zone_id, instance_type_name, spot=spot, callbacks=callbacks
        )

    def _fair_share_admit(self, tenant: str, zone_id: str, room: int) -> bool:
        """Work-conserving fair share: under-quota tenants always get
        in; over-quota tenants only take room nobody else has reserved."""
        quotas = self.quotas(zone_id)
        if self.spot_holdings(tenant, zone_id) < quotas[tenant]:
            return True
        reserved = sum(
            max(0, quotas[other] - self.spot_holdings(other, zone_id))
            for other in self._tenants
            if other != tenant
        )
        return room > reserved

    def _find_victim(
        self, tenant: str, zone_id: str
    ) -> Optional[tuple[str, Instance]]:
        """Lowest-priority holder strictly below the requester, ties in
        arbitration order; the victim instance is the oldest held."""
        priority = self._tenants[tenant].priority
        candidates = [
            name
            for name, spec in self._tenants.items()
            if spec.priority < priority and self._holdings[name][zone_id]
        ]
        if not candidates:
            return None
        victim_tenant = min(
            candidates,
            key=lambda n: (self._tenants[n].priority, self.arbitration_rank[n]),
        )
        instance_id = min(self._holdings[victim_tenant][zone_id])
        return victim_tenant, self._holdings[victim_tenant][zone_id][instance_id]

    def _evict(
        self, tenant: str, zone_id: str, victim: tuple[str, Instance]
    ) -> None:
        victim_tenant, instance = victim
        self.evictions_won[tenant] += 1
        self.evictions_suffered[victim_tenant] += 1
        if self.bus.enabled:
            self.bus.emit(
                TenantEviction(
                    time=self.cloud.engine.now,
                    tenant=tenant,
                    victim=victim_tenant,
                    zone=zone_id,
                    instance_id=instance.id,
                )
            )
        # reclaim() runs the ordinary preemption path: the victim's
        # wrapped callbacks release its accounting and notify its
        # controller like any spot reclaim.
        self.cloud.reclaim(instance)

    def _admit(
        self,
        tenant: str,
        zone_id: str,
        instance_type_name: str,
        *,
        spot: bool,
        callbacks: InstanceCallbacks,
    ) -> Instance:
        self.admitted[tenant] += 1
        self._emit_admission(tenant, zone_id, "admitted")
        return self._delegate(
            tenant, zone_id, instance_type_name, spot=spot, callbacks=callbacks
        )

    def _delegate(
        self,
        tenant: str,
        zone_id: str,
        instance_type_name: str,
        *,
        spot: bool,
        callbacks: InstanceCallbacks,
    ) -> Instance:
        wrapped = InstanceCallbacks(
            on_ready=callbacks.on_ready,
            on_preempted=self._releasing(callbacks.on_preempted),
            on_failed=self._releasing(callbacks.on_failed),
            on_preempt_warning=callbacks.on_preempt_warning,
        )
        before = self.cloud.spot_usage(zone_id) if spot else 0
        self.billing.charge_to(tenant)
        try:
            instance = self.cloud.request_instance(
                zone_id, instance_type_name, spot=spot, callbacks=wrapped
            )
        finally:
            self.billing.charge_to(None)
        if spot and self.cloud.spot_usage(zone_id) > before:
            self._hold(tenant, zone_id, instance)
        return instance

    def _releasing(
        self, chain: Optional[Callable[[Instance], None]]
    ) -> Callable[[Instance], None]:
        """Wrap a lifecycle callback to release accounting first."""

        def callback(instance: Instance) -> None:
            self.release(instance)
            if chain is not None:
                chain(instance)

        return callback

    def _emit_admission(self, tenant: str, zone_id: str, decision: str) -> None:
        if self.bus.enabled:
            self.bus.emit(
                TenantAdmission(
                    time=self.cloud.engine.now,
                    tenant=tenant,
                    zone=zone_id,
                    decision=decision,
                    mode=self.mode,
                )
            )

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-tenant admission counters (for the fleet report)."""
        return {
            name: {
                "admitted": self.admitted[name],
                "rejected": self.rejected[name],
                "evictions_won": self.evictions_won[name],
                "evictions_suffered": self.evictions_suffered[name],
            }
            for name in self._tenants
        }
