"""Multi-tenant control plane (docs/CONTROL_PLANE.md).

N declarative services on one shared simulated multi-cloud: deployment
specs (:mod:`repro.control.spec`), capacity-metered admission across
tenants (:mod:`repro.control.broker`), the fleet runner and its
canonical cost/SLO report (:mod:`repro.control.plane`), and the
1-vs-N contention ablation (:mod:`repro.control.ablation`).
"""

from repro.control.ablation import AblationResult, run_contention_ablation
from repro.control.broker import CapacityBroker, SharedBillingMeter, TenantCloudView
from repro.control.plane import ControlPlane, FleetReport, TenantReport
from repro.control.spec import (
    ADMISSION_MODES,
    TENANT_POLICIES,
    DeploymentSpec,
    TenantSpec,
    load_deployment,
)

__all__ = [
    "ADMISSION_MODES",
    "TENANT_POLICIES",
    "AblationResult",
    "CapacityBroker",
    "ControlPlane",
    "DeploymentSpec",
    "FleetReport",
    "SharedBillingMeter",
    "TenantCloudView",
    "TenantReport",
    "TenantSpec",
    "load_deployment",
    "run_contention_ablation",
]
