"""Declarative multi-tenant deployment specs.

A *deployment* is the control-plane unit: a named set of tenants, each
wrapping one :class:`~repro.serving.spec.ServiceSpec` (the Listing 1
shape) with control-plane-only attributes — admission priority, a
fair-share weight, and a workload profile — plus the admission mode the
shared :class:`~repro.control.broker.CapacityBroker` runs in.  It
mirrors how the real SkyServe account hosts many ``sky serve up``
services against one pool of regional spot capacity.

Specs round-trip through plain dictionaries (the shape a YAML or JSON
deployment file parses into).  JSON always works; YAML needs the
optional ``pyyaml`` package and :func:`load_deployment` says so clearly
when it is missing rather than failing on import.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.serving.spec import ServiceSpec

__all__ = [
    "ADMISSION_MODES",
    "TENANT_POLICIES",
    "DeploymentSpec",
    "TenantSpec",
    "load_deployment",
]

#: Admission modes of the capacity broker.
ADMISSION_MODES = ("fair_share", "strict_priority")

#: Serving-policy names a tenant may select (the replay-policy names).
TENANT_POLICIES = ("SpotHedge", "EvenSpread", "RoundRobin", "OnDemand")

#: Workload generator names (mirrors the ``repro serve`` CLI choices).
_WORKLOADS = ("poisson", "arena", "maf")

#: Model profiles a tenant may serve.
_PROFILES = ("llama2-70b", "opt-6.7b", "vicuna-13b")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a service spec plus control-plane attributes.

    ``priority`` orders tenants for strict-priority admission (larger
    wins; ties never evict each other).  ``qps_share`` is the tenant's
    fair-share weight — shares are relative, so ``(1, 1, 2)`` gives the
    last tenant half of every contended zone.
    """

    service: ServiceSpec = field(default_factory=ServiceSpec)
    priority: int = 0
    qps_share: float = 1.0
    workload: str = "arena"
    rate: float = 0.5
    policy: str = "SpotHedge"
    profile: str = "llama2-70b"

    @property
    def name(self) -> str:
        return self.service.name

    def __post_init__(self) -> None:
        if self.qps_share <= 0:
            raise ValueError(
                f"tenant {self.name!r}: qps_share must be positive, "
                f"got {self.qps_share!r}"
            )
        if self.rate <= 0:
            raise ValueError(
                f"tenant {self.name!r}: rate must be positive, got {self.rate!r}"
            )
        if self.workload not in _WORKLOADS:
            raise ValueError(
                f"tenant {self.name!r}: unknown workload {self.workload!r}; "
                f"expected one of {_WORKLOADS}"
            )
        if self.policy not in TENANT_POLICIES:
            raise ValueError(
                f"tenant {self.name!r}: unknown policy {self.policy!r}; "
                f"expected one of {TENANT_POLICIES}"
            )
        if self.profile not in _PROFILES:
            raise ValueError(
                f"tenant {self.name!r}: unknown profile {self.profile!r}; "
                f"expected one of {_PROFILES}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "service": self.service.to_dict(),
            "priority": self.priority,
            "qps_share": self.qps_share,
            "workload": self.workload,
            "rate": self.rate,
            "policy": self.policy,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> TenantSpec:
        return cls(
            service=ServiceSpec.from_dict(data.get("service", {})),
            priority=int(data.get("priority", 0)),
            qps_share=float(data.get("qps_share", 1.0)),
            workload=data.get("workload", "arena"),
            rate=float(data.get("rate", 0.5)),
            policy=data.get("policy", "SpotHedge"),
            profile=data.get("profile", "llama2-70b"),
        )


@dataclass(frozen=True)
class DeploymentSpec:
    """A named set of tenants sharing one simulated multi-cloud."""

    name: str = "deployment"
    tenants: tuple[TenantSpec, ...] = ()
    admission: str = "fair_share"
    #: Bundled chaos scenario name or scenario JSON path; ``None`` runs
    #: the clean trace.  The scenario arms against the *shared* cloud,
    #: so every tenant feels it.
    scenario: Optional[str] = None
    hours: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("deployment needs a name")
        if not self.tenants:
            raise ValueError(f"deployment {self.name!r} has no tenants")
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"deployment {self.name!r}: duplicate tenant names {dupes}"
            )
        if self.admission not in ADMISSION_MODES:
            raise ValueError(
                f"deployment {self.name!r}: unknown admission mode "
                f"{self.admission!r}; expected one of {ADMISSION_MODES}"
            )
        if self.hours <= 0:
            raise ValueError(f"deployment {self.name!r}: hours must be positive")

    @property
    def tenant_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tenants)

    def tenant(self, name: str) -> TenantSpec:
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(
            f"no tenant {name!r} in deployment {self.name!r}; "
            f"tenants: {list(self.tenant_names)}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "tenants": [t.to_dict() for t in self.tenants],
            "admission": self.admission,
            "scenario": self.scenario,
            "hours": self.hours,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> DeploymentSpec:
        return cls(
            name=data.get("name", "deployment"),
            tenants=tuple(
                TenantSpec.from_dict(t) for t in data.get("tenants", [])
            ),
            admission=data.get("admission", "fair_share"),
            scenario=data.get("scenario"),
            hours=float(data.get("hours", 2.0)),
        )


def load_deployment(path: Union[str, Path]) -> DeploymentSpec:
    """Load a deployment spec from a ``.json`` or ``.yaml``/``.yml`` file.

    YAML support is optional (``pyyaml`` is not a project dependency);
    when the package is missing the error says to use the JSON form.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such deployment spec: {path}")
    text = path.read_text()
    if path.suffix == ".json":
        data = json.loads(text)
    elif path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise RuntimeError(
                f"loading {path} needs the optional 'pyyaml' package; "
                "install it or convert the deployment spec to JSON"
            ) from exc
        data = yaml.safe_load(text)
    else:
        raise ValueError(
            f"unsupported deployment spec type {path.suffix!r}: "
            "expected .json, .yaml, or .yml"
        )
    if not isinstance(data, dict):
        raise ValueError(f"deployment spec {path} is not a mapping")
    return DeploymentSpec.from_dict(data)
