"""Contention ablation: 1 tenant vs N tenants on the same capacity.

The experiment behind the control plane: run each tenant *alone* on the
full shared cloud (the regime every single-service result in the paper
measures), then run all of them together under each admission mode, and
compare per-tenant availability and cost.  The solo runs use identical
workload seeds (``derive_seed(seed, "workload:<name>")`` is independent
of the deployment around it), so every delta is attributable to
tenant-on-tenant capacity contention and the broker's arbitration —
not to workload noise.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.cloud.catalog import Catalog
from repro.cloud.provider import CloudConfig
from repro.cloud.topology import Topology
from repro.cloud.traces import SpotTrace
from repro.control.plane import ControlPlane, FleetReport, _round
from repro.control.spec import DeploymentSpec

__all__ = ["AblationResult", "run_contention_ablation"]

ABLATION_SCHEMA = "repro.control.ablation/v1"


@dataclass(frozen=True)
class AblationResult:
    """Solo baselines plus both contended admission modes."""

    deployment: str
    seed: int
    duration: float
    solo: dict[str, FleetReport]
    fair_share: FleetReport
    strict_priority: FleetReport

    def rows(self) -> list[dict[str, Any]]:
        """Per-tenant comparison rows (solo vs each admission mode)."""
        rows = []
        for name, solo_fleet in self.solo.items():
            solo = solo_fleet.tenant(name)
            fair = self.fair_share.tenant(name)
            strict = self.strict_priority.tenant(name)
            rows.append(
                {
                    "tenant": name,
                    "priority": fair.priority,
                    "qps_share": _round(fair.qps_share),
                    "availability": {
                        "solo": _round(solo.availability),
                        "fair_share": _round(fair.availability),
                        "strict_priority": _round(strict.availability),
                    },
                    "cost": {
                        "solo": _round(solo.total_cost),
                        "fair_share": _round(fair.total_cost),
                        "strict_priority": _round(strict.total_cost),
                    },
                    "preemptions": {
                        "solo": solo.preemptions,
                        "fair_share": fair.preemptions,
                        "strict_priority": strict.preemptions,
                    },
                    "rejected": {
                        "fair_share": fair.rejected,
                        "strict_priority": strict.rejected,
                    },
                    "evictions_suffered": {
                        "fair_share": fair.evictions_suffered,
                        "strict_priority": strict.evictions_suffered,
                    },
                }
            )
        return rows

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": ABLATION_SCHEMA,
            "deployment": self.deployment,
            "seed": self.seed,
            "duration": _round(self.duration),
            "tenants": self.rows(),
            "fleet": {
                "fair_share": self.fair_share.to_dict(),
                "strict_priority": self.strict_priority.to_dict(),
                "solo": {
                    name: report.to_dict() for name, report in self.solo.items()
                },
            },
        }

    def to_json(self) -> str:
        """Canonical byte-stable JSON artifact."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def run_contention_ablation(
    deployment: DeploymentSpec,
    trace: SpotTrace,
    *,
    duration: Optional[float] = None,
    seed: int = 0,
    topology: Optional[Topology] = None,
    catalog: Optional[Catalog] = None,
    cloud_config: Optional[CloudConfig] = None,
) -> AblationResult:
    """Run the 1-vs-N contention ablation for ``deployment``."""
    if duration is None:
        duration = deployment.hours * 3600.0

    def run(spec: DeploymentSpec) -> FleetReport:
        plane = ControlPlane(
            spec,
            trace,
            topology=topology,
            catalog=catalog,
            cloud_config=cloud_config,
            seed=seed,
        )
        return plane.run(duration)

    solo = {}
    for tenant in deployment.tenants:
        solo_spec = dataclasses.replace(
            deployment,
            name=f"{deployment.name}:solo:{tenant.name}",
            tenants=(tenant,),
            admission="fair_share",
        )
        solo[tenant.name] = run(solo_spec)
    fair = run(dataclasses.replace(deployment, admission="fair_share"))
    strict = run(dataclasses.replace(deployment, admission="strict_priority"))
    return AblationResult(
        deployment=deployment.name,
        seed=seed,
        duration=duration,
        solo=solo,
        fair_share=fair,
        strict_priority=strict,
    )
