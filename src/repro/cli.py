"""Command-line interface — the simulated counterpart of ``sky serve``.

Subcommands:

``repro serve``
    Deploy a service (spec from a JSON file or defaults) on a trace and
    serve a generated workload; prints the Fig. 9-style report.
``repro serve up``
    Run a multi-tenant deployment spec (``repro.control``) — N services
    sharing one simulated multi-cloud behind a capacity broker — and
    print/write the per-tenant + fleet-wide cost/SLO report (see
    docs/CONTROL_PLANE.md).
``repro serve ablate``
    The 1-vs-N contention ablation: each tenant alone vs all together
    under fair-share and strict-priority admission.
``repro compare``
    Run the four §5.1 systems on one scenario and print the comparison.
``repro replay``
    Replay the §5.2 policies over a named or file trace (Fig. 14a/b).
``repro trace``
    Generate a canned trace (aws1/aws2/aws3/gcp1/cpu) to JSON or CSV,
    or print its summary statistics.
``repro analyze``
    Preemption-correlation and search-space analysis of a trace
    (Figs. 3 and 5).
``repro events``
    Summarise a JSONL telemetry log written by ``repro serve --events``:
    replica timeline, preemption counts, per-leg latency percentiles,
    policy decision counts, and chaos injections.
``repro report``
    Aggregate an event log (or a seeded in-memory replay) into a run
    report: terminal dashboard with fleet/cost/SLO timelines and hot
    profiler phases, plus a canonical byte-stable JSON artifact.
``repro hetero``
    Heterogeneous GPU fleet experiments (``repro.experiments.hetero``):
    ``repro hetero frontier`` replays the homogeneous single-type
    fleets and the mixed zone × instance-type fleet over one base
    trace and prints the cost/availability frontier (byte-stable JSON
    with ``--json``; see docs/HETEROGENEOUS.md).
``repro chaos``
    Fault-injection tooling (``repro.chaos``): list/show the bundled
    scenarios and run the policy × scenario robustness matrix, emitting
    a deterministic scorecard JSON (see docs/CHAOS.md).
``repro lint``
    Run the repository's determinism & simulation-hygiene static
    analyzer (``repro.devtools.lint``) over the source tree; see
    docs/STATIC_ANALYSIS.md.

All randomness is seeded; the same command line always prints the same
numbers.  ``--log-level`` (global) controls the stdlib logging verbosity
of every ``repro.*`` module.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis import availability_by_search_space, preemption_correlation
from repro.cloud import HOUR, SpotTrace, aws1, aws2, aws3, cpu_trace, default_catalog, gcp1
from repro.cloud.trace_io import save_capacity_csv
from repro.core import (
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.experiments import (
    ENGINES,
    FLEETS,
    ReplayCache,
    ReplayConfig,
    ResultStore,
    TraceReplayer,
    frontier_to_json,
    grid_sweep,
    pareto_fleets,
    run_comparison,
    run_frontier,
)
from repro.serving import (
    ServiceSpec,
    SkyService,
    llama2_70b_profile,
    opt_6_7b_profile,
    vicuna_13b_profile,
)
from repro.telemetry import (
    EventBus,
    JsonlSink,
    PrometheusSnapshot,
    configure_logging,
    format_summary,
    read_events,
)
from repro.workloads import arena_workload, maf_workload, poisson_workload

__all__ = ["build_parser", "main"]

_CANNED_TRACES: dict[str, Callable[[], SpotTrace]] = {
    "aws1": aws1,
    "aws2": aws2,
    "aws3": aws3,
    "gcp1": gcp1,
    "cpu": cpu_trace,
}

_PROFILES = {
    "llama2-70b": llama2_70b_profile,
    "opt-6.7b": opt_6_7b_profile,
    "vicuna-13b": vicuna_13b_profile,
}


def _load_trace(spec: str) -> SpotTrace:
    """Resolve a trace argument: a canned name, a .json, or a .csv file."""
    if spec in _CANNED_TRACES:
        return _CANNED_TRACES[spec]()
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"unknown trace {spec!r}: expected one of {sorted(_CANNED_TRACES)} "
            "or a path to a .json/.csv trace file"
        )
    if path.suffix == ".json":
        return SpotTrace.load(path)
    if path.suffix == ".csv":
        raise SystemExit(
            "CSV traces need an explicit duration; convert to JSON via "
            "'repro trace' or load programmatically with load_capacity_csv"
        )
    raise SystemExit(f"unsupported trace file type {path.suffix!r}")


def _make_workload(kind: str, duration: float, rate: float, seed: int):
    if kind == "poisson":
        return poisson_workload(duration, rate=rate, seed=seed)
    if kind == "arena":
        return arena_workload(
            duration, base_rate=rate, max_output_tokens=800, seed=seed
        )
    if kind == "maf":
        return maf_workload(duration, base_rate=rate, seed=seed)
    raise SystemExit(f"unknown workload {kind!r}")


def _print_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    if args.spec:
        spec = ServiceSpec.from_dict(json.loads(Path(args.spec).read_text()))
    else:
        from repro.serving import ReplicaPolicyConfig, ResourceSpec

        spec = ServiceSpec(
            name="cli-service",
            replica_policy=ReplicaPolicyConfig(
                fixed_target=args.target, num_overprovision=args.overprovision
            ),
            resources=ResourceSpec(accelerator=args.accelerator),
            request_timeout=args.timeout,
            max_queue_per_replica=args.max_queue,
        )
    duration = args.hours * HOUR
    workload = _make_workload(args.workload, duration, args.rate, args.seed)
    policy = spothedge(trace.zone_ids, num_overprovision=args.overprovision)
    telemetry = None
    jsonl_sink = None
    prom_sink = None
    if args.events or args.metrics_out:
        telemetry = EventBus()
        if args.events:
            try:
                jsonl_sink = JsonlSink(args.events)
            except OSError as exc:
                raise SystemExit(f"cannot write event log {args.events}: {exc}")
            telemetry.attach(jsonl_sink)
        if args.metrics_out:
            prom_sink = PrometheusSnapshot()
            telemetry.attach(prom_sink)
    profile = _PROFILES[args.profile]()
    if args.batch_slope:
        profile = dataclasses.replace(profile, decode_batch_slope=args.batch_slope)
    service = SkyService(
        spec,
        policy,
        trace,
        profile=profile,
        seed=args.seed,
        telemetry=telemetry,
    )
    report = service.run(workload, duration)
    if telemetry is not None:
        telemetry.close()
    print(f"service:      {spec.name} ({args.profile} on {args.accelerator})")
    print(f"requests:     {report.total_requests} "
          f"({report.failed} failed, {report.failure_rate:.2%})")
    if report.latency:
        print(f"latency:      p50={report.latency.p50:.1f}s "
              f"p90={report.latency.p90:.1f}s p99={report.latency.p99:.1f}s")
    print(f"availability: {report.availability:.1%}")
    print(f"cost:         ${report.total_cost:.2f} "
          f"(spot ${report.spot_cost:.2f} / od ${report.od_cost:.2f})")
    print(f"preemptions:  {report.preemptions}")
    print("\nfinal replica status:")
    _print_table(
        ["replica", "market", "zone", "state", "ongoing"],
        [
            [r["replica"], r["market"], r["zone"], r["state"], r["ongoing_requests"]]
            for r in service.controller.status()
        ],
    )
    if jsonl_sink is not None:
        print(f"\nwrote {jsonl_sink.count} events to {args.events} "
              f"(summarise with: repro events {args.events})")
    if prom_sink is not None:
        Path(args.metrics_out).write_text(prom_sink.render())
        print(f"wrote Prometheus metrics snapshot to {args.metrics_out}")
    return 0


def _cmd_serve_up(args: argparse.Namespace) -> int:
    from repro.control import ControlPlane, load_deployment

    try:
        deployment = load_deployment(args.deployment)
    except (OSError, ValueError, RuntimeError) as exc:
        raise SystemExit(str(exc))
    trace = _load_trace(args.trace)
    duration = args.hours * HOUR if args.hours is not None else None
    telemetry = None
    jsonl_sink = None
    if args.events:
        try:
            jsonl_sink = JsonlSink(args.events)
        except OSError as exc:
            raise SystemExit(f"cannot write event log {args.events}: {exc}")
        telemetry = EventBus([jsonl_sink])
    plane = ControlPlane(deployment, trace, seed=args.seed, telemetry=telemetry)
    fleet = plane.run(duration)
    if telemetry is not None:
        telemetry.close()
    print(f"deployment:  {deployment.name} "
          f"({len(deployment.tenants)} tenant(s), "
          f"admission={deployment.admission}, "
          f"scenario={deployment.scenario or 'none'})")
    print(f"fleet cost:  ${fleet.fleet_spot_cost + fleet.fleet_od_cost:.2f} "
          f"(spot ${fleet.fleet_spot_cost:.2f} / od ${fleet.fleet_od_cost:.2f})")
    print()
    _print_table(
        ["tenant", "policy", "prio", "requests", "failed", "avail",
         "p99", "preempt", "rejected", "evicted", "cost"],
        [
            [
                t.tenant,
                t.policy,
                t.priority,
                t.total_requests,
                t.failed,
                f"{t.availability:.1%}",
                f"{t.latency_p99:.1f}s",
                t.preemptions,
                t.rejected,
                t.evictions_suffered,
                f"${t.total_cost:.2f}",
            ]
            for t in fleet.tenants
        ],
    )
    if jsonl_sink is not None:
        print(f"\nwrote {jsonl_sink.count} events to {args.events} "
              f"(summarise with: repro events {args.events})")
    if args.report:
        Path(args.report).write_text(fleet.to_json())
        print(f"wrote fleet cost/SLO report to {args.report}")
    return 0


def _cmd_serve_ablate(args: argparse.Namespace) -> int:
    from repro.control import load_deployment, run_contention_ablation

    try:
        deployment = load_deployment(args.deployment)
    except (OSError, ValueError, RuntimeError) as exc:
        raise SystemExit(str(exc))
    trace = _load_trace(args.trace)
    duration = args.hours * HOUR if args.hours is not None else None
    result = run_contention_ablation(
        deployment, trace, duration=duration, seed=args.seed
    )
    print(f"contention ablation: {deployment.name} "
          f"({len(deployment.tenants)} tenant(s), "
          f"scenario={deployment.scenario or 'none'}, seed={args.seed})")
    print("availability (solo = tenant alone on the full cloud):")
    print()
    rows = []
    for row in result.rows():
        avail = row["availability"]
        cost = row["cost"]
        rows.append(
            [
                row["tenant"],
                row["priority"],
                f"{avail['solo']:.3f}",
                f"{avail['fair_share']:.3f}",
                f"{avail['strict_priority']:.3f}",
                f"${cost['fair_share']:.2f}",
                f"${cost['strict_priority']:.2f}",
                row["rejected"]["fair_share"],
                row["evictions_suffered"]["strict_priority"],
            ]
        )
    _print_table(
        ["tenant", "prio", "solo", "fair", "strict",
         "cost(fair)", "cost(strict)", "rej(fair)", "evict(strict)"],
        rows,
    )
    if args.report:
        Path(args.report).write_text(result.to_json())
        print(f"\nwrote ablation report to {args.report}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    duration = args.hours * HOUR
    workload = arena_workload(
        duration,
        base_rate=args.rate,
        diurnal_amplitude=0.4,
        burst_multiplier=1.8,
        burst_mean_duration=180.0,
        max_output_tokens=800,
        seed=args.seed,
    )
    results = run_comparison(args.scenario, workload, duration, seed=args.seed)
    od_hourly = default_catalog().get("g5.48xlarge").on_demand_hourly
    baseline = od_hourly * 4 * duration / 3600.0
    rows = []
    for name, result in results.items():
        r = result.report
        rows.append(
            [
                name,
                f"{r.failure_rate:.2%}",
                f"{r.latency.p50:.1f}s" if r.latency else "-",
                f"{r.latency.p99:.1f}s" if r.latency else "-",
                f"{r.total_cost / baseline:.1%}",
                f"{r.availability:.1%}",
            ]
        )
    print(f"Spot {args.scenario.capitalize()} — {len(workload)} requests, "
          f"{args.hours}h, N_Tar=4")
    _print_table(["system", "fail", "P50", "P99", "cost vs OD", "avail"], rows)
    if args.json:
        store = ResultStore(metadata={"scenario": args.scenario, "seed": args.seed,
                                      "hours": args.hours})
        for name, result in results.items():
            store.add("compare", name, result.report)
        store.save(args.json)
        print(f"\nwrote raw results to {args.json}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    policies = _parse_axis(args.policies, str, "--policies")
    for name in policies:
        if name not in _REPLAY_POLICIES:
            raise SystemExit(
                f"unknown policy {name!r}: expected one of {sorted(_REPLAY_POLICIES)}"
            )
    if args.events and len(policies) != 1:
        raise SystemExit(
            "--events records one replay: select a single policy with "
            "--policies (got " + ",".join(policies) + ")"
        )
    rows = []
    raw_results = {}
    for name in policies:
        factory = _REPLAY_POLICIES[name]
        telemetry = None
        jsonl_sink = None
        if args.events:
            try:
                jsonl_sink = JsonlSink(args.events)
            except OSError as exc:
                raise SystemExit(f"cannot write event log {args.events}: {exc}")
            telemetry = EventBus([jsonl_sink])
        replayer = TraceReplayer(
            trace,
            ReplayConfig(n_tar=args.target, k=args.k),
            seed=args.seed,
            telemetry=telemetry,
            engine=args.engine,
        )
        result = replayer.run(factory(trace.zone_ids))
        if telemetry is not None:
            telemetry.close()
        raw_results[name] = result
        rows.append(
            [
                name,
                f"{result.availability:.1%}",
                f"{result.relative_cost:.1%}",
                result.preemptions,
            ]
        )
    print(f"trace {trace.name}: N_Tar={args.target}, k={args.k}, "
          f"{trace.duration / 86400:.1f} days")
    _print_table(["policy", "availability", "cost vs OD", "preemptions"], rows)
    if args.json:
        store = ResultStore(metadata={"trace": trace.name, "n_tar": args.target,
                                      "k": args.k, "seed": args.seed})
        for name, result in raw_results.items():
            store.add("replay", name, result)
        store.save(args.json)
        print(f"\nwrote raw results to {args.json}")
    if args.events and jsonl_sink is not None:
        print(f"\nwrote {jsonl_sink.count} events to {args.events} "
              f"(report with: repro report {args.events})")
    return 0


#: Replay policy factories by CLI name (shared by replay and sweep).
_REPLAY_POLICIES: dict[str, Callable] = {
    "SpotHedge": spothedge,
    "RoundRobin": round_robin_policy,
    "EvenSpread": even_spread_policy,
    "OnDemand": OnDemandOnlyPolicy,
}


def _sweep_point(
    trace: SpotTrace,
    use_cache: bool,
    engine: str = "discrete",
    *,
    policy: str = "SpotHedge",
    n_tar: int = 4,
    cold_start: float = 180.0,
    k: float = 3.0,
    seed: int = 0,
):
    """One replay grid point.  Module-level (with the fixed arguments
    bound via ``functools.partial``) so parallel sweeps can pickle it.

    The engine is deliberately not part of the cache key: all engines
    produce byte-identical results, so a cached discrete replay is a
    valid hit for a hybrid sweep and vice versa."""
    config = ReplayConfig(n_tar=n_tar, cold_start=cold_start, k=k)
    cache = ReplayCache() if use_cache else None
    if cache is not None:
        key = ReplayCache.key(trace, policy, None, config, seed)
        hit = cache.get(key)
        if hit is not None:
            return hit
    replayer = TraceReplayer(trace, config, seed=seed, engine=engine)
    result = replayer.run(_REPLAY_POLICIES[policy](trace.zone_ids))
    if cache is not None:
        cache.put(key, result)
    return result


def _parse_axis(raw: str, cast: Callable, option: str) -> list:
    try:
        return [cast(v) for v in raw.split(",") if v != ""]
    except ValueError:
        raise SystemExit(f"bad value list for {option}: {raw!r}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    cache = ReplayCache()
    if args.clear_cache:
        removed = cache.clear()
        print(f"cleared {removed} cached replay result(s) from {cache.root}")
        return 0
    trace = _load_trace(args.trace)
    policies = _parse_axis(args.policies, str, "--policies")
    for name in policies:
        if name not in _REPLAY_POLICIES:
            raise SystemExit(
                f"unknown policy {name!r}: expected one of {sorted(_REPLAY_POLICIES)}"
            )
    grid = {
        "policy": policies,
        "n_tar": _parse_axis(args.n_tar, int, "--n-tar"),
        "cold_start": _parse_axis(args.cold_start, float, "--cold-start"),
        "k": _parse_axis(args.k, float, "--k"),
    }
    use_cache = not args.no_cache
    entries_before = len(cache) if use_cache else 0
    telemetry = None
    if args.progress:
        class _Progress:
            def accept(self, event):
                status = "ok" if event.ok else "ERROR"
                print(f"[{event.index + 1}/{event.total}] {event.label} {status}",
                      file=sys.stderr)

        telemetry = EventBus([_Progress()])
    import functools

    points = grid_sweep(
        functools.partial(_sweep_point, trace, use_cache, args.engine, seed=args.seed),
        grid,
        workers=args.workers,
        telemetry=telemetry,
    )
    rows = []
    for point in points:
        if point.ok:
            r = point.result
            rows.append(
                [point.label(), f"{r.availability:.1%}", f"{r.relative_cost:.1%}",
                 r.preemptions]
            )
        else:
            rows.append([point.label(), "error", point.error, "-"])
    print(f"trace {trace.name}: {len(points)} points, seed={args.seed}, "
          f"workers={args.workers}")
    _print_table(["point", "availability", "cost vs OD", "preemptions"], rows)
    if use_cache:
        new_entries = len(cache) - entries_before
        reused = sum(1 for p in points if p.ok) - new_entries
        print(f"\ncache {cache.root}: {new_entries} new, {max(reused, 0)} reused "
              "(clear with: repro sweep --clear-cache)")
    if args.json:
        store = ResultStore(
            metadata={"trace": trace.name, "seed": args.seed, "grid": grid}
        )
        for point in points:
            payload = point.result if point.ok else {"error": point.error}
            store.add("sweep", point.label(), payload)
        store.save(args.json)
        print(f"wrote raw results to {args.json}")
    return 0


def _cmd_hetero_frontier(args: argparse.Namespace) -> int:
    fleets = _parse_axis(args.fleets, str, "--fleets") if args.fleets else None
    if fleets:
        for name in fleets:
            if name not in FLEETS:
                raise SystemExit(
                    f"unknown fleet {name!r}: expected one of {list(FLEETS)}"
                )
    duration = args.duration * HOUR if args.duration is not None else None
    points = run_frontier(
        fleets,
        n_tar=args.target,
        seed=args.seed,
        duration=duration,
        workers=args.workers,
        use_cache=not args.no_cache,
    )
    pareto = pareto_fleets(points)
    rows = []
    for point in points:
        name = point.params["fleet"]
        if not point.ok:
            rows.append([name, "error", point.error, "-", "-"])
            continue
        r = point.result
        rows.append(
            [
                name + (" *" if name in pareto else ""),
                f"{r.eff_availability:.1%}",
                f"{r.relative_cost:.1%}",
                r.preemptions,
                ",".join(FLEETS[name]),
            ]
        )
    print(
        f"heterogeneous frontier: N_Tar={args.target} reference units "
        f"(A10G replicas), seed={args.seed}"
    )
    _print_table(
        ["fleet", "eff availability", "cost vs OD", "preemptions", "instance types"],
        rows,
    )
    print("\n* = on the cost/availability Pareto frontier")
    if args.json:
        text = frontier_to_json(points, n_tar=args.target, seed=args.seed)
        Path(args.json).write_text(text)
        print(f"wrote frontier JSON to {args.json}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = _load_trace(args.name)
    if args.out:
        path = Path(args.out)
        if path.suffix == ".json":
            trace.save(path)
        elif path.suffix == ".csv":
            save_capacity_csv(trace, path)
        else:
            raise SystemExit(f"unsupported output type {path.suffix!r}")
        print(f"wrote {trace.name} ({trace.n_steps} steps, "
              f"{len(trace.zone_ids)} zones) to {path}")
        return 0
    rows = [
        [
            zone,
            f"{trace.availability(zone):.1%}",
            int(trace.preemption_indicator(zone).sum()),
        ]
        for zone in trace.zone_ids
    ]
    print(f"{trace.name}: {trace.duration / 86400:.1f} days, "
          f"step {trace.step:.0f}s, pooled availability "
          f"{trace.pooled_availability():.1%}")
    _print_table(["zone", "availability", "capacity drops"], rows)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    matrix = preemption_correlation(trace)
    print(f"{trace.name}: preemption correlation")
    print(f"  mean intra-region r = {matrix.mean_intra_region():.3f}")
    print(f"  mean inter-region r = {matrix.mean_inter_region():.3f}")
    curve = availability_by_search_space(trace, threshold=args.threshold)
    print(f"\navailability vs search space (>= {args.threshold} instances):")
    _print_table(
        ["search space", "availability"],
        [[label, f"{a:.1%}"] for label, a in zip(curve.labels, curve.availability)],
    )
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    path = Path(args.log)
    if not path.exists():
        raise SystemExit(f"no such event log: {args.log}")
    try:
        events = read_events(path)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"malformed event log {args.log}: {exc}")
    if args.kind:
        events = [e for e in events if e.kind == args.kind]
        if not events:
            print(f"no {args.kind!r} events in {args.log}")
            return 0
    if args.timeline:
        for event in events:
            data = event.to_dict()
            kind = data.pop("kind")
            time = data.pop("time")
            fields = " ".join(f"{k}={v}" for k, v in data.items())
            print(f"t={time:10.1f}  {kind:<24} {fields}")
        return 0
    print(format_summary(events, replica_limit=args.replica_limit))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry import RingBufferSink, build_report, render_dashboard

    if args.log:
        path = Path(args.log)
        if not path.exists():
            raise SystemExit(f"no such event log: {args.log}")
        try:
            events = read_events(path)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"malformed event log {args.log}: {exc}")
        label = path.name
    elif args.replay:
        # Seeded in-memory replay: deterministic, so the artifact is
        # byte-identical across invocations of the same command line.
        trace = _load_trace(args.trace)
        if args.policy not in _REPLAY_POLICIES:
            raise SystemExit(
                f"unknown policy {args.policy!r}: expected one of "
                f"{sorted(_REPLAY_POLICIES)}"
            )
        sink = RingBufferSink()
        replayer = TraceReplayer(
            trace,
            ReplayConfig(n_tar=args.target, k=args.k),
            seed=args.seed,
            telemetry=EventBus([sink]),
        )
        replayer.run(_REPLAY_POLICIES[args.policy](trace.zone_ids))
        events = sink.events
        marker = sink.drop_event()
        if marker is not None:
            events.append(marker)
        label = f"{args.policy}@{trace.name} seed={args.seed}"
    else:
        raise SystemExit("pass an event log, or --replay to replay a trace")
    report = build_report(events, label=label)
    if not args.no_dashboard:
        print(render_dashboard(report, top_k=args.top_k), end="")
    if args.json:
        Path(args.json).write_text(report.to_json())
        if not args.no_dashboard:
            print(f"wrote report JSON to {args.json}")
    return 0


def _fmt_opt(value, fmt: str) -> str:
    """Format an optional scorecard number; ``None`` renders as ``-``."""
    return "-" if value is None else format(value, fmt)


def _cmd_chaos_list(args: argparse.Namespace) -> int:
    # Lazy import: chaos is opt-in; plain simulation commands must not
    # pay for it (mirrors the lint lazy import below).
    from repro.chaos import builtin_scenario, list_builtin

    rows = []
    for name in list_builtin():
        scenario = builtin_scenario(name)
        rows.append(
            [
                name,
                len(scenario.injections),
                f"{scenario.last_end / HOUR:.1f}h",
                scenario.description,
            ]
        )
    _print_table(["scenario", "injections", "span", "description"], rows)
    return 0


def _cmd_chaos_show(args: argparse.Namespace) -> int:
    from repro.chaos import load_scenario

    try:
        scenario = load_scenario(args.scenario)
    except (ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc))
    print(scenario.to_json())
    return 0


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    from repro.chaos import load_scenario, run_matrix

    trace = _load_trace(args.trace)
    try:
        scenarios = [
            load_scenario(name)
            for name in _parse_axis(args.scenarios, str, "--scenarios")
        ]
    except (ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc))
    policies = _parse_axis(args.policies, str, "--policies")
    config = ReplayConfig(n_tar=args.target, cold_start=args.cold_start, k=args.k)
    telemetry = None
    if args.progress:
        class _Progress:
            def accept(self, event):
                status = "ok" if event.ok else "ERROR"
                print(f"[{event.index + 1}/{event.total}] {event.label} {status}",
                      file=sys.stderr)

        telemetry = EventBus([_Progress()])
    try:
        scorecard = run_matrix(
            trace,
            scenarios,
            policies,
            config=config,
            seed=args.seed,
            workers=args.workers,
            use_cache=not args.no_cache,
            telemetry=telemetry,
            engine=args.engine,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(f"trace {trace.name}: {len(scenarios)} scenario(s) x "
          f"{len(policies)} policy(ies), N_Tar={args.target}, seed={args.seed}")
    rows = []
    for score in scorecard.to_dict()["scores"]:
        rows.append(
            [
                score["scenario"],
                score["policy"],
                f"{score['availability']:.1%}",
                _fmt_opt(score["availability_under_injection"], ".1%"),
                _fmt_opt(score["recovery_seconds"], ".0f"),
                f"{score['slo_violation_minutes']:.1f}",
                f"{score['cost_overshoot']:+.1%}",
                _fmt_opt(score["od_peak"], "d"),
            ]
        )
    _print_table(
        ["scenario", "policy", "avail", "storm avail", "recovery s",
         "SLO viol min", "cost overshoot", "OD peak"],
        rows,
    )
    if args.out:
        scorecard.save(args.out)
        print(f"\nwrote scorecard to {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the linter is a dev tool; simulation commands should
    # not pay for it (and it must never import the simulator).
    from repro.devtools.lint.cli import run as lint_run

    return lint_run(args)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SkyServe/SpotHedge reproduction — simulated sky serve",
    )
    parser.add_argument(
        "--log-level",
        default="WARNING",
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        help="stdlib logging level for all repro.* modules",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="deploy one service and serve a workload")
    serve.add_argument("--trace", default="aws1", help="canned name or trace file")
    serve.add_argument("--spec", help="service spec JSON file (Listing 1 shape)")
    serve.add_argument("--workload", default="arena",
                       choices=["poisson", "arena", "maf"])
    serve.add_argument("--rate", type=float, default=0.5, help="base req/s")
    serve.add_argument("--hours", type=float, default=2.0)
    serve.add_argument("--target", type=int, default=4, help="N_Tar")
    serve.add_argument("--overprovision", type=int, default=2, help="N_Extra")
    serve.add_argument("--accelerator", default="V100")
    serve.add_argument("--profile", default="llama2-70b", choices=sorted(_PROFILES))
    serve.add_argument("--timeout", type=float, default=100.0)
    serve.add_argument("--batch-slope", type=float, default=0.0,
                       help="per-stream decode slowdown per extra co-resident "
                            "stream (0 = fixed-rate decode)")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="bound each replica's server queue; excess "
                            "requests are shed and retried by the client")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--events",
                       help="write every telemetry event to this JSONL file")
    serve.add_argument("--metrics-out",
                       help="write a Prometheus text-format snapshot here")
    serve.set_defaults(func=_cmd_serve)

    serve_sub = serve.add_subparsers(
        dest="serve_command", required=False, metavar="{up,ablate}",
        help="multi-tenant control-plane commands (omit to serve one service)")
    up = serve_sub.add_parser(
        "up", help="run a multi-tenant deployment spec on a shared cloud")
    up.add_argument("deployment", help="deployment spec (.json or .yaml)")
    up.add_argument("--trace", default="aws1", help="canned name or trace file")
    up.add_argument("--hours", type=float, default=None,
                    help="override the spec's duration")
    up.add_argument("--seed", type=int, default=0)
    up.add_argument("--report",
                    help="write the canonical fleet cost/SLO report JSON here")
    up.add_argument("--events",
                    help="write a JSONL telemetry event log to this path")
    up.set_defaults(func=_cmd_serve_up)
    ablate = serve_sub.add_parser(
        "ablate", help="1-vs-N contention ablation (solo/fair-share/priority)")
    ablate.add_argument("deployment", help="deployment spec (.json or .yaml)")
    ablate.add_argument("--trace", default="aws1", help="canned name or trace file")
    ablate.add_argument("--hours", type=float, default=None,
                        help="override the spec's duration")
    ablate.add_argument("--seed", type=int, default=0)
    ablate.add_argument("--report", help="write the ablation JSON artifact here")
    ablate.set_defaults(func=_cmd_serve_ablate)

    compare = sub.add_parser("compare", help="run the SS5.1 four-system comparison")
    compare.add_argument("scenario", choices=["available", "volatile"])
    compare.add_argument("--hours", type=float, default=3.0)
    compare.add_argument("--rate", type=float, default=1.0)
    compare.add_argument("--seed", type=int, default=6)
    compare.add_argument("--json", help="also write raw results to this JSON file")
    compare.set_defaults(func=_cmd_compare)

    replay = sub.add_parser("replay", help="replay SS5.2 policies over a trace")
    replay.add_argument("--trace", default="gcp1")
    replay.add_argument("--target", type=int, default=4, help="N_Tar")
    replay.add_argument("--k", type=float, default=4.0,
                        help="on-demand/spot price ratio")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--policies", default=",".join(_REPLAY_POLICIES),
                        help="comma list of replay policies "
                             f"({','.join(_REPLAY_POLICIES)})")
    replay.add_argument("--events",
                        help="write telemetry events to this JSONL file "
                             "(single policy only)")
    replay.add_argument("--json", help="also write raw results to this JSON file")
    replay.add_argument("--engine", choices=ENGINES, default="discrete",
                        help="replay engine; vectorized/hybrid run the numpy "
                             "fastpath with byte-identical results "
                             "(default: discrete)")
    replay.set_defaults(func=_cmd_replay)

    sweep = sub.add_parser(
        "sweep",
        help="grid-sweep replay policies over a trace (parallel + cached)",
    )
    sweep.add_argument("--trace", default="gcp1", help="canned name or trace file")
    sweep.add_argument("--policies", default="SpotHedge",
                       help="comma list of replay policies "
                            f"({','.join(_REPLAY_POLICIES)})")
    sweep.add_argument("--n-tar", default="4", help="comma list of N_Tar values")
    sweep.add_argument("--cold-start", default="180",
                       help="comma list of cold-start seconds")
    sweep.add_argument("--k", default="3.0",
                       help="comma list of on-demand/spot price ratios")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_SWEEP_WORKERS", "1")),
        help="process-pool size; results are identical for any value "
             "(default: $REPRO_SWEEP_WORKERS or 1)",
    )
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk replay result cache")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="empty the replay cache and exit")
    sweep.add_argument("--progress", action="store_true",
                       help="print per-point progress to stderr")
    sweep.add_argument("--json", help="also write raw results to this JSON file")
    sweep.add_argument("--engine", choices=ENGINES, default="hybrid",
                       help="replay engine for every grid point; results are "
                            "byte-identical across engines (default: hybrid)")
    sweep.set_defaults(func=_cmd_sweep)

    hetero = sub.add_parser(
        "hetero", help="heterogeneous GPU fleet experiments"
    )
    hetero_sub = hetero.add_subparsers(dest="hetero_cmd", required=True)
    frontier = hetero_sub.add_parser(
        "frontier",
        help="homogeneous-vs-heterogeneous cost/availability frontier",
    )
    frontier.add_argument(
        "--fleets",
        default="",
        help=f"comma-separated fleet names (default: all of {list(FLEETS)})",
    )
    frontier.add_argument("--target", type=int, default=4,
                          help="N_Tar in reference-replica units (default 4)")
    frontier.add_argument("--seed", type=int, default=0)
    frontier.add_argument("--duration", type=float, default=None,
                          help="window the base trace to this many hours")
    frontier.add_argument("--workers", type=int, default=1)
    frontier.add_argument("--no-cache", action="store_true",
                          help="bypass the replay cache")
    frontier.add_argument("--json", help="write the byte-stable frontier JSON here")
    frontier.set_defaults(func=_cmd_hetero_frontier)

    trace = sub.add_parser("trace", help="inspect or export a trace")
    trace.add_argument("name", help="canned name or trace file")
    trace.add_argument("--out", help="write to .json or .csv")
    trace.set_defaults(func=_cmd_trace)

    analyze = sub.add_parser("analyze", help="correlation + search-space analysis")
    analyze.add_argument("--trace", default="aws3")
    analyze.add_argument("--threshold", type=int, default=1)
    analyze.set_defaults(func=_cmd_analyze)

    events = sub.add_parser("events", help="summarise a JSONL telemetry log")
    events.add_argument("log", help="JSONL file written by serve --events")
    events.add_argument("--kind", help="only consider events of this kind")
    events.add_argument("--timeline", action="store_true",
                        help="print every event in order instead of a summary")
    events.add_argument("--replica-limit", type=int, default=40,
                        help="max rows in the replica timeline table")
    events.set_defaults(func=_cmd_events)

    report = sub.add_parser(
        "report",
        help="render a run report: terminal dashboard + canonical JSON",
    )
    report.add_argument("log", nargs="?",
                        help="JSONL event log (from serve/replay --events)")
    report.add_argument("--replay", action="store_true",
                        help="replay a trace with telemetry and report on it")
    report.add_argument("--trace", default="gcp1",
                        help="canned name or trace file (with --replay)")
    report.add_argument("--policy", default="SpotHedge",
                        help="replay policy (with --replay)")
    report.add_argument("--target", type=int, default=4, help="N_Tar")
    report.add_argument("--k", type=float, default=3.0,
                        help="on-demand/spot price ratio")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--top-k", type=int, default=8,
                        help="hot phases shown in the dashboard")
    report.add_argument("--json", help="write the canonical report JSON here")
    report.add_argument("--no-dashboard", action="store_true",
                        help="suppress the terminal dashboard")
    report.set_defaults(func=_cmd_report)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection scenarios and the robustness matrix",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    chaos_list = chaos_sub.add_parser("list", help="list bundled scenarios")
    chaos_list.set_defaults(func=_cmd_chaos_list)

    chaos_show = chaos_sub.add_parser(
        "show", help="print a scenario as canonical JSON"
    )
    chaos_show.add_argument("scenario", help="bundled name or scenario JSON file")
    chaos_show.set_defaults(func=_cmd_chaos_show)

    chaos_run = chaos_sub.add_parser(
        "run",
        help="run the policy x scenario robustness matrix (parallel + cached)",
    )
    chaos_run.add_argument("--trace", default="gcp1", help="canned name or trace file")
    chaos_run.add_argument("--scenarios", default="preemption-storm",
                           help="comma list of bundled names or scenario files")
    chaos_run.add_argument("--policies", default="SpotHedge,EvenSpread",
                           help="comma list of replay policies "
                                f"({','.join(_REPLAY_POLICIES)})")
    chaos_run.add_argument("--target", type=int, default=4, help="N_Tar")
    chaos_run.add_argument("--cold-start", type=float, default=180.0,
                           help="cold-start seconds")
    chaos_run.add_argument("--k", type=float, default=3.0,
                           help="on-demand/spot price ratio")
    chaos_run.add_argument("--seed", type=int, default=0)
    chaos_run.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_SWEEP_WORKERS", "1")),
        help="process-pool size; results are identical for any value "
             "(default: $REPRO_SWEEP_WORKERS or 1)",
    )
    chaos_run.add_argument("--no-cache", action="store_true",
                           help="bypass the on-disk replay result cache")
    chaos_run.add_argument("--progress", action="store_true",
                           help="print per-point progress to stderr")
    chaos_run.add_argument("--out", help="write the scorecard JSON here")
    chaos_run.add_argument("--engine", choices=ENGINES, default="hybrid",
                           help="replay engine for every matrix cell; "
                                "scorecards are byte-identical across "
                                "engines (default: hybrid)")
    chaos_run.set_defaults(func=_cmd_chaos_run)

    lint = sub.add_parser(
        "lint",
        help="determinism & simulation-hygiene static analysis",
    )
    from repro.devtools.lint.cli import add_lint_args

    add_lint_args(lint)
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``repro events log | head``).
        # Point stdout at devnull so interpreter shutdown doesn't raise
        # again while flushing, and exit with the conventional 128+SIGPIPE.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
