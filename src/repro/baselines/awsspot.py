"""AWS spot node pool (AWSSpot) baseline (§5.1).

A pure-spot node pool with autoscaling, allocated over the zones of a
single region with a static even spread.  Two failure modes the paper
documents are reproduced by construction:

* it relaunches into highly-preempting zones (no preemption memory),
  causing the provision-then-preempt cycles of §5.1; and
* it assumes CPU-like fast readiness and does not count in-flight
  launches toward its target, so under unavailability it keeps
  requesting — the over-request behaviour of Fig. 12 (up to 14 replicas
  in provisioning state for a target of ~4).
"""

from __future__ import annotations

from typing import AbstractSet, Mapping, Optional, Sequence

from repro.core.placement import EvenSpreadPlacer
from repro.serving.policy import MixTarget, Observation, ServingPolicy

__all__ = ["AWSSpotPolicy"]


class AWSSpotPolicy(ServingPolicy):
    """Single-region pure-spot pool with static even spread."""

    name = "AWSSpot"
    respects_zone_cooldown = False
    # Static pure-spot target — no time-dependent state.
    stationary_decisions = True

    def __init__(
        self,
        zones: Sequence[str],
        *,
        zone_costs: Optional[Mapping[str, float]] = None,
    ) -> None:
        regions = {z.rsplit(":", 1)[0] for z in zones}
        if len(regions) > 1:
            raise ValueError(
                f"AWSSpot is a single-region system; got zones in {sorted(regions)}"
            )
        self.placer = EvenSpreadPlacer(zones, zone_costs)

    def target_mix(self, obs: Observation) -> MixTarget:
        self.placer.set_target(obs.n_tar)
        return MixTarget(
            spot_target=obs.n_tar,
            od_target=0,
            count_provisioning_spot=False,
        )

    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        return self.placer.select_zone(obs.spot_by_zone, excluded)
