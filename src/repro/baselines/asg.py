"""AWS Auto-scaling Group (ASG) baseline (§2.4, §5.1).

ASG maintains *static node pools*: a fixed percentage of on-demand
replicas (the paper follows AWS's official example and uses 10%, with a
minimum of one) and the rest spot, evenly spread across the zones of a
*single region*.  The mixture never adapts: when spot capacity vanishes
the on-demand pool is not grown (→ overload, the 36% failure rate of
§5.1), and when spot is plentiful the on-demand replica is kept anyway
(→ the 1.56× cost premium of §2.4).
"""

from __future__ import annotations

import math
from typing import AbstractSet, Mapping, Optional, Sequence

from repro.core.placement import EvenSpreadPlacer
from repro.serving.policy import MixTarget, Observation, ServingPolicy

__all__ = ["ASGPolicy"]


class ASGPolicy(ServingPolicy):
    """Static spot/on-demand mixture with even spread in one region."""

    name = "ASG"
    # Static mixture — decisions depend only on fleet counts.
    stationary_decisions = True

    def __init__(
        self,
        zones: Sequence[str],
        *,
        od_fraction: float = 0.10,
        min_od_replicas: int = 1,
        zone_costs: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not 0.0 <= od_fraction <= 1.0:
            raise ValueError(f"od_fraction {od_fraction} outside [0, 1]")
        if min_od_replicas < 0:
            raise ValueError("negative min_od_replicas")
        regions = {z.rsplit(":", 1)[0] for z in zones}
        if len(regions) > 1:
            raise ValueError(
                f"ASG is a single-region system; got zones in {sorted(regions)}"
            )
        self.placer = EvenSpreadPlacer(zones, zone_costs)
        self.od_fraction = od_fraction
        self.min_od_replicas = min_od_replicas

    def target_mix(self, obs: Observation) -> MixTarget:
        total = obs.n_tar
        od = max(int(math.floor(self.od_fraction * total)), self.min_od_replicas)
        od = min(od, total)
        self.placer.set_target(total - od)
        return MixTarget(spot_target=total - od, od_target=od)

    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        return self.placer.select_zone(obs.spot_by_zone, excluded)

    def select_od_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        # On-demand nodes share the same single-region node group.
        for zone in self.placer.zones:
            if zone not in excluded:
                return zone
        return None
