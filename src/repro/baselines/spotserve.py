"""SpotServe baseline (Miao et al.) — preemption-adaptive inference.

SpotServe is *not* a provisioning system: it "does not consider or
implement instance provisioning, placement, or scheduling" (§2.1), so —
exactly as in the paper's §5.1 — it runs *together with* a provisioning
system (SkyServe, ASG, AWSSpot, MArk).  What SpotServe contributes is
inside the replica: when a replica is partitioned over several spot
instances and one is preempted, it re-parallelises the model over the
survivors (after a migration pause) instead of dying, at proportionally
reduced throughput.

Two entry points:

* :func:`spotserve_spec` — a service spec for the §5.1 OPT-6.7B setup:
  multi-worker replicas with adaptive parallelism and a 20 s request
  timeout; combine with any provisioning policy through ``SkyService``.
* :class:`SingleZonePolicy` — the "naively using SpotServe in a single
  zone" deployment of §2.2/§5.1: all spot replicas pinned to one zone
  with no fallback, whose failure rate depends entirely on that zone's
  obtainability (the paper measures 2.0–75.9% depending on region).
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Sequence

from repro.serving.policy import MixTarget, Observation, ServingPolicy
from repro.serving.spec import ReplicaPolicyConfig, ResourceSpec, ServiceSpec

__all__ = ["SingleZonePolicy", "spotserve_spec"]


class SingleZonePolicy(ServingPolicy):
    """All spot replicas in one pinned zone; no fallback, no spread."""

    name = "SpotServe-1zone"
    # Pinned single zone, static target — trivially stationary.
    stationary_decisions = True

    def __init__(self, zone: str) -> None:
        self.zone = zone

    def target_mix(self, obs: Observation) -> MixTarget:
        return MixTarget(spot_target=obs.n_tar, od_target=0)

    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        if self.zone in excluded:
            return None
        return self.zone


def spotserve_spec(
    *,
    name: str = "opt-6.7b-spotserve",
    workers_per_replica: int = 1,
    fixed_target: Optional[int] = None,
    target_qps_per_replica: float = 1.0,
    num_overprovision: int = 2,
    accelerator: str = "T4",
    any_of: Sequence = (),
) -> ServiceSpec:
    """Service spec matching the paper's SpotServe experiment (OPT-6.7B
    on 4×T4 g4dn.12xlarge replicas, 20 s request timeout)."""
    return ServiceSpec(
        name=name,
        replica_policy=ReplicaPolicyConfig(
            target_qps_per_replica=target_qps_per_replica,
            fixed_target=fixed_target,
            num_overprovision=num_overprovision,
        ),
        resources=ResourceSpec(
            accelerator=accelerator,
            any_of=tuple(any_of),
            workers_per_replica=workers_per_replica,
        ),
        request_timeout=20.0,
    )
