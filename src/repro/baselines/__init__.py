"""Reimplementations of the systems the paper compares against (§5.1):
AWS Auto-scaling Group, AWSSpot node pools, MArk, and SpotServe."""

from repro.baselines.asg import ASGPolicy
from repro.baselines.awsspot import AWSSpotPolicy
from repro.baselines.mark import MArkPolicy
from repro.baselines.spotserve import SingleZonePolicy, spotserve_spec

__all__ = [
    "ASGPolicy",
    "AWSSpotPolicy",
    "MArkPolicy",
    "SingleZonePolicy",
    "spotserve_spec",
]
