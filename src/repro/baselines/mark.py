"""MArk baseline (Zhang et al., ATC '19), modified for spot GPUs (§5.1).

MArk serves ML models on spot *CPU* instances with proactive
(predictive) autoscaling; the original also offloads to burstable
instances and AWS Lambda, neither of which exists for GPUs, so — like
the paper — we keep its predictive autoscaling and spot-first allocation
but restrict it to GPU instances in a single region.

Behaviours reproduced from the paper's observations:

* *Proactive autoscaling*: MArk extrapolates the request-rate trend and
  provisions for the predicted load ``prediction_horizon`` seconds ahead
  (workload prediction via linear fit over a sliding window).
* *CPU-era readiness assumption*: in-flight launches do not count
  toward the target, so under GPU unavailability MArk over-requests
  (Fig. 12) and under availability it may briefly overshoot.
* *Spot-only GPUs in one region*: periods with no obtainable spot
  capacity become full downtime (the 6.8–79% failure rates of §5.1).
"""

from __future__ import annotations

import math
from collections import deque
from typing import AbstractSet, Mapping, Optional, Sequence

import numpy as np

from repro.core.placement import EvenSpreadPlacer
from repro.serving.policy import MixTarget, Observation, ServingPolicy

__all__ = ["MArkPolicy"]


class MArkPolicy(ServingPolicy):
    """Predictive spot-first autoscaling in a single region."""

    name = "MArk"
    respects_zone_cooldown = False
    # The sliding prediction window keys on obs.now — every call
    # advances history, so the fastpath must consult it each step.
    stationary_decisions = False

    def __init__(
        self,
        zones: Sequence[str],
        *,
        zone_costs: Optional[Mapping[str, float]] = None,
        prediction_horizon: float = 300.0,
        history_window: float = 1800.0,
    ) -> None:
        if prediction_horizon < 0 or history_window <= 0:
            raise ValueError("invalid prediction windows")
        regions = {z.rsplit(":", 1)[0] for z in zones}
        if len(regions) > 1:
            raise ValueError(
                f"MArk is a single-region system; got zones in {sorted(regions)}"
            )
        self.placer = EvenSpreadPlacer(zones, zone_costs)
        self.prediction_horizon = prediction_horizon
        self.history_window = history_window
        self._history: deque[tuple[float, int]] = deque()

    def _predicted_target(self, obs: Observation) -> int:
        """Extrapolate the N_Tar trend ``prediction_horizon`` ahead."""
        self._history.append((obs.now, obs.n_tar))
        cutoff = obs.now - self.history_window
        while self._history and self._history[0][0] < cutoff:
            self._history.popleft()
        if len(self._history) < 2:
            return obs.n_tar
        times = np.asarray([t for t, _ in self._history])
        targets = np.asarray([n for _, n in self._history], dtype=float)
        if float(times[-1] - times[0]) <= 0:
            return obs.n_tar
        slope, intercept = np.polyfit(times, targets, 1)
        predicted = slope * (obs.now + self.prediction_horizon) + intercept
        return max(obs.n_tar, int(math.ceil(predicted)))

    def target_mix(self, obs: Observation) -> MixTarget:
        target = self._predicted_target(obs)
        self.placer.set_target(target)
        return MixTarget(
            spot_target=target,
            od_target=0,
            count_provisioning_spot=False,
        )

    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        return self.placer.select_zone(obs.spot_by_zone, excluded)
