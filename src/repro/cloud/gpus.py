"""GPU serving profiles and (zone × instance-type) spot pools.

The ROADMAP's "heterogeneous spot GPU fleets" direction (ShuntServe in
PAPERS.md): spot GPU generations differ not just in price but in
per-token serving throughput, batching behaviour, and how aggressively
the provider reclaims them.  This module makes that diversity a
first-class dimension:

* :class:`GpuServingProfile` — per-accelerator serving characteristics
  (decode tokens/s per replica, decode-batch slope, relative preemption
  rate), with a bundled table for the T4/V100/A10G/L4/A100/H100 classes.
* *Pool ids* — ``"{zone_id}@{instance_type}"`` composite ids that let
  every zone-keyed subsystem (``SpotTrace``, ``SimCloud``, the placers,
  the replay loop) operate over (zone, instance-type) pools unchanged.
  ``cloud:region:zone@itype`` still parses as a 3-part zone id, so
  region derivation keeps working.
* :func:`make_hetero_trace` — expands a per-zone capacity trace into
  per-pool capacity streams: each instance type gets its own seeded
  ON/OFF reclaim process (scaled by its preemption rate) gated by the
  base zone's availability, so types in one zone share regional shocks
  but are reclaimed independently — the §2.2 correlation structure at
  pool granularity.
* Cost helpers — per-pool cost-per-effective-throughput, the MIN-COST
  signal that lets SpotHedge co-optimise zone × instance type, plus the
  capacity-weight / price-multiplier mappings the replay layer consumes.

Capacity weights are expressed relative to a *reference* accelerator
(the service spec's accelerator): a weight of 1.0 is exactly one
reference replica, so a homogeneous reference-only fleet reduces
bit-for-bit to the unweighted stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.cloud.catalog import Catalog
from repro.cloud.pricing import PriceBook
from repro.cloud.traces import SpotTrace, _onoff_series
from repro.sim.rng import RngRegistry

__all__ = [
    "GPU_PROFILES",
    "GpuServingProfile",
    "capacity_weight",
    "gpu_profile",
    "is_pool",
    "make_hetero_trace",
    "pool_capacity_weights",
    "pool_id",
    "pool_price_multipliers",
    "pool_spot_costs",
    "pool_zone",
    "split_pool",
]

_POOL_SEP = "@"

_HOUR = 3600.0


@dataclass(frozen=True)
class GpuServingProfile:
    """Serving characteristics of one GPU class.

    ``tokens_per_second`` is the sustained single-request decode rate of
    a full replica (the unit the capacity weights normalise by);
    ``decode_batch_slope`` is the relative per-token slowdown each extra
    batched request adds (continuous batching, see
    ``ModelProfile.decode_batch_slope``); ``preemption_scale`` is the
    reclaim frequency relative to the A10G baseline — high-end GPUs are
    reclaimed more often because on-demand customers take the hardware
    first (§2.2's observation, amplified for scarce generations).
    """

    accelerator: str
    tokens_per_second: float
    decode_batch_slope: float
    preemption_scale: float

    def __post_init__(self) -> None:
        if self.tokens_per_second <= 0:
            raise ValueError(f"{self.accelerator}: non-positive throughput")
        if self.decode_batch_slope < 0:
            raise ValueError(f"{self.accelerator}: negative batch slope")
        if self.preemption_scale <= 0:
            raise ValueError(f"{self.accelerator}: non-positive preemption scale")


#: Per-class profiles, normalised so the paper's A10G experiments keep
#: their timing: an 8×A10G replica decodes ~45 tok/s on Llama-2-70B
#: (≈ 1/0.022 s/token with the repo's default decode timing).
GPU_PROFILES: dict[str, GpuServingProfile] = {
    "T4": GpuServingProfile("T4", tokens_per_second=14.0, decode_batch_slope=0.10, preemption_scale=0.8),
    "V100": GpuServingProfile("V100", tokens_per_second=30.0, decode_batch_slope=0.07, preemption_scale=0.9),
    "A10G": GpuServingProfile("A10G", tokens_per_second=45.0, decode_batch_slope=0.05, preemption_scale=1.0),
    "L4": GpuServingProfile("L4", tokens_per_second=38.0, decode_batch_slope=0.06, preemption_scale=0.9),
    "A100": GpuServingProfile("A100", tokens_per_second=120.0, decode_batch_slope=0.03, preemption_scale=1.6),
    "H100": GpuServingProfile("H100", tokens_per_second=260.0, decode_batch_slope=0.02, preemption_scale=2.2),
}


def gpu_profile(accelerator: str) -> GpuServingProfile:
    profile = GPU_PROFILES.get(accelerator)
    if profile is None:
        raise KeyError(
            f"no GPU serving profile for {accelerator!r} "
            f"(known: {sorted(GPU_PROFILES)})"
        )
    return profile


def capacity_weight(accelerator: str, reference: str = "A10G") -> float:
    """Serving capacity of one replica, in reference-replica units.

    Exactly 1.0 when ``accelerator == reference`` (no float division is
    performed), so homogeneous fleets stay on the integer fast paths.
    """
    if accelerator == reference:
        return 1.0
    return gpu_profile(accelerator).tokens_per_second / gpu_profile(reference).tokens_per_second


# ----------------------------------------------------------------------
# Pool ids: "{zone_id}@{instance_type}"
# ----------------------------------------------------------------------


def pool_id(zone_id: str, instance_type: str) -> str:
    """Composite id for the (zone, instance-type) spot pool."""
    if _POOL_SEP in zone_id:
        raise ValueError(f"zone id {zone_id!r} already carries an instance type")
    if not instance_type:
        raise ValueError("empty instance type")
    return f"{zone_id}{_POOL_SEP}{instance_type}"


def split_pool(pool: str) -> tuple[str, Optional[str]]:
    """``(zone_id, instance_type)``; instance type is ``None`` for plain
    zone ids, so callers can treat both uniformly."""
    zone, sep, itype = pool.partition(_POOL_SEP)
    return (zone, itype if sep else None)


def pool_zone(pool: str) -> str:
    return split_pool(pool)[0]


def is_pool(zone_or_pool: str) -> bool:
    return _POOL_SEP in zone_or_pool


# ----------------------------------------------------------------------
# Cost signals and replay mappings
# ----------------------------------------------------------------------


def pool_spot_costs(
    pools: Sequence[str],
    price_book: PriceBook,
    *,
    reference: str = "A10G",
) -> dict[str, float]:
    """Per-pool cost-per-effective-throughput, the co-optimised MIN-COST
    signal: spot $/h of the pool's instance type in the pool's zone,
    divided by the type's capacity weight.  A pricey H100 pool can still
    rank first when its weight is high enough — this is exactly the
    trade the frontier ablation measures."""
    costs: dict[str, float] = {}
    for pool in pools:
        zone, itype_name = split_pool(pool)
        if itype_name is None:
            raise ValueError(f"{pool!r} is not a (zone, instance-type) pool id")
        itype = price_book.catalog.get(itype_name)
        if itype.accelerator is None:
            raise ValueError(f"{itype_name!r} carries no accelerator")
        price = price_book.spot_hourly(zone, itype_name)
        costs[pool] = price / capacity_weight(itype.accelerator, reference)
    return costs


def pool_capacity_weights(
    pools: Sequence[str],
    catalog: Catalog,
    *,
    reference: str = "A10G",
) -> dict[str, float]:
    """Per-pool capacity weights (reference-replica units) for the
    replay layer's weighted readiness accounting."""
    weights: dict[str, float] = {}
    for pool in pools:
        _zone, itype_name = split_pool(pool)
        if itype_name is None:
            weights[pool] = 1.0
            continue
        itype = catalog.get(itype_name)
        if itype.accelerator is None:
            raise ValueError(f"{itype_name!r} carries no accelerator")
        weights[pool] = capacity_weight(itype.accelerator, reference)
    return weights


def pool_price_multipliers(
    pools: Sequence[str],
    price_book: PriceBook,
    *,
    reference_price: float,
) -> dict[str, float]:
    """Per-pool spot price in units of ``reference_price`` — the
    ``ReplayConfig.zone_price_multipliers`` mapping that makes replay
    cost accrual price each pool at its own rate."""
    if reference_price <= 0:
        raise ValueError("non-positive reference price")
    multipliers: dict[str, float] = {}
    for pool in pools:
        zone, itype_name = split_pool(pool)
        if itype_name is None:
            raise ValueError(f"{pool!r} is not a (zone, instance-type) pool id")
        multipliers[pool] = price_book.spot_hourly(zone, itype_name) / reference_price
    return multipliers


# ----------------------------------------------------------------------
# Per-(zone, instance-type) capacity streams
# ----------------------------------------------------------------------


def make_hetero_trace(
    base: SpotTrace,
    instance_types: Sequence[str],
    catalog: Catalog,
    *,
    seed: int = 0,
    type_mean_up: float = 8.0 * _HOUR,
    type_mean_down: float = 1.0 * _HOUR,
    name: Optional[str] = None,
) -> SpotTrace:
    """Expand a per-zone trace into per-(zone, instance-type) pools.

    For every base zone and every instance type whose cloud offers it,
    a pool row ``zone@itype`` is emitted: the base zone's capacity row
    (the regional availability signal — shocks, blackouts, diurnal
    squeeze) gated by a per-pool ON/OFF reclaim process whose mean up
    time is ``type_mean_up / preemption_scale`` for the type's GPU
    class.  Scarce generations (A100/H100) therefore flicker more even
    inside an available zone, matching the per-type reclaim-rate spread
    the heterogeneous profiles model.

    Pool rows are deterministic per (seed, pool id): every pool draws
    from its own ``RngRegistry`` stream, so adding or removing types
    never perturbs the other pools' series.
    """
    if not instance_types:
        raise ValueError("no instance types")
    if type_mean_up <= 0 or type_mean_down <= 0:
        raise ValueError("non-positive type ON/OFF means")
    registry = RngRegistry(seed)
    pool_ids: list[str] = []
    rows: list[np.ndarray] = []
    for zone_id in base.zone_ids:
        cloud = zone_id.split(":")[0]
        zone_row = base.zone_row(zone_id)
        for itype_name in instance_types:
            itype = catalog.get(itype_name)
            if itype.cloud != cloud:
                continue
            if itype.accelerator is None:
                raise ValueError(f"{itype_name!r} carries no accelerator")
            pid = pool_id(zone_id, itype_name)
            scale = gpu_profile(itype.accelerator).preemption_scale
            rng = registry.stream(f"pool:{pid}")
            on = _onoff_series(
                base.n_steps,
                base.step,
                type_mean_up / scale,
                type_mean_down,
                rng,
            )
            rows.append(np.where(on, zone_row, 0))
            pool_ids.append(pid)
    if not rows:
        raise ValueError(
            f"none of {list(instance_types)!r} is offered by the clouds in "
            f"trace {base.name!r}"
        )
    return SpotTrace(
        name or f"{base.name}-hetero",
        pool_ids,
        base.step,
        np.stack(rows),
        chaos_digest=base.chaos_digest,
    )
