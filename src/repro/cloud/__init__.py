"""Simulated multi-cloud substrate: catalog, topology, traces, provider.

This package stands in for AWS/GCP/Azure in the reproduction: it exposes
the same observable behaviours SkyServe's policies react to (launch
success/failure, readiness delays, preemptions, prices) without needing
cloud accounts.
"""

from repro.cloud.billing import BillingMeter, CostBreakdown
from repro.cloud.catalog import (
    SPOT_DISCOUNT_TABLE,
    Catalog,
    InstanceType,
    default_catalog,
    hetero_catalog,
)
from repro.cloud.gpus import (
    GPU_PROFILES,
    GpuServingProfile,
    capacity_weight,
    gpu_profile,
    make_hetero_trace,
    pool_capacity_weights,
    pool_id,
    pool_price_multipliers,
    pool_spot_costs,
    split_pool,
)
from repro.cloud.instance import Instance, InstanceCallbacks, InstanceState
from repro.cloud.network import NetworkModel, default_network
from repro.cloud.pricing import PriceBook, default_price_book
from repro.cloud.provider import CloudConfig, SimCloud
from repro.cloud.topology import CloudDesc, Region, Topology, Zone, default_topology
from repro.cloud.trace_io import (
    PreemptionRecord,
    from_capacity_events,
    from_preemption_log,
    load_capacity_csv,
    save_capacity_csv,
)
from repro.cloud.traces import (
    DAY,
    HOUR,
    WEEK,
    SpotTrace,
    TraceZoneSpec,
    aws1,
    aws2,
    aws3,
    cpu_trace,
    gcp1,
    make_correlated_trace,
)

__all__ = [
    "BillingMeter",
    "Catalog",
    "GPU_PROFILES",
    "GpuServingProfile",
    "CloudConfig",
    "CloudDesc",
    "CostBreakdown",
    "DAY",
    "HOUR",
    "Instance",
    "InstanceCallbacks",
    "InstanceState",
    "InstanceType",
    "NetworkModel",
    "PreemptionRecord",
    "PriceBook",
    "Region",
    "SPOT_DISCOUNT_TABLE",
    "SimCloud",
    "SpotTrace",
    "Topology",
    "TraceZoneSpec",
    "WEEK",
    "Zone",
    "aws1",
    "aws2",
    "aws3",
    "capacity_weight",
    "cpu_trace",
    "default_catalog",
    "default_network",
    "default_price_book",
    "default_topology",
    "from_capacity_events",
    "from_preemption_log",
    "gcp1",
    "gpu_profile",
    "hetero_catalog",
    "load_capacity_csv",
    "make_correlated_trace",
    "make_hetero_trace",
    "pool_capacity_weights",
    "pool_id",
    "pool_price_multipliers",
    "pool_spot_costs",
    "save_capacity_csv",
    "split_pool",
]
