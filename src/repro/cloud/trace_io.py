"""Interop loaders for externally collected spot traces.

The paper's artifact releases its collected traces as per-zone event
logs (each record: a timestamp and the observed launchable capacity, or
a preemption event while maintaining a desired instance count).  These
helpers convert such logs into :class:`~repro.cloud.traces.SpotTrace`
grids so real collected data can drive every experiment in this repo:

* :func:`from_capacity_events` — per-zone ``(time, capacity)`` change
  events, piecewise-constant between events;
* :func:`from_preemption_log` — per-zone preemption/recovery event
  records against a desired count, reconstructing capacity as
  ``desired − outstanding_preempted``;
* :func:`load_capacity_csv` / :func:`save_capacity_csv` — a plain
  ``zone,time,capacity`` CSV round-trip.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cloud.traces import SpotTrace

__all__ = [
    "PreemptionRecord",
    "from_capacity_events",
    "from_preemption_log",
    "load_capacity_csv",
    "save_capacity_csv",
]


def from_capacity_events(
    events: Mapping[str, Sequence[tuple[float, int]]],
    *,
    duration: float,
    step: float = 60.0,
    name: str = "imported",
    initial_capacity: int = 0,
) -> SpotTrace:
    """Build a trace from per-zone capacity-change events.

    ``events[zone]`` is a list of ``(time, capacity)`` pairs meaning
    "capacity becomes this value at this time"; between events capacity
    is constant.  Events need not be sorted.  Before a zone's first
    event its capacity is ``initial_capacity``.
    """
    if duration <= 0:
        raise ValueError(f"non-positive duration {duration!r}")
    if step <= 0:
        raise ValueError(f"non-positive step {step!r}")
    if not events:
        raise ValueError("no zones in event log")
    n_steps = max(int(round(duration / step)), 1)
    zone_ids = list(events)
    capacity = np.full((len(zone_ids), n_steps), initial_capacity, dtype=np.int64)
    for row, zone in enumerate(zone_ids):
        for time, value in sorted(events[zone]):
            if value < 0:
                raise ValueError(f"zone {zone}: negative capacity {value} at t={time}")
            if time >= duration:
                continue
            start = max(int(time // step), 0)
            capacity[row, start:] = value
    return SpotTrace(name, zone_ids, step, capacity)


@dataclass(frozen=True)
class PreemptionRecord:
    """One event from a maintain-N collection run.

    ``kind`` is ``"preempt"`` (lost ``count`` instances) or ``"recover"``
    (relaunched ``count`` instances successfully).
    """

    time: float
    zone: str
    kind: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("preempt", "recover"):
            raise ValueError(f"unknown record kind {self.kind!r}")
        if self.count < 1:
            raise ValueError(f"non-positive count {self.count}")
        if self.time < 0:
            raise ValueError(f"negative time {self.time}")


def from_preemption_log(
    records: Iterable[PreemptionRecord],
    *,
    desired: int,
    duration: float,
    step: float = 60.0,
    name: str = "imported-log",
) -> SpotTrace:
    """Reconstruct per-zone capacity from a maintain-N event log.

    The collection methodology (§5.2): keep ``desired`` spot instances
    per zone, record each preemption, and record each successful
    replenishment.  Capacity at time t is ``desired`` minus the
    instances currently lost and not yet recovered, floored at zero.
    """
    if desired < 1:
        raise ValueError("desired must be >= 1")
    by_zone: dict[str, list[PreemptionRecord]] = {}
    for record in records:
        by_zone.setdefault(record.zone, []).append(record)
    if not by_zone:
        raise ValueError("empty preemption log")
    events: dict[str, list[tuple[float, int]]] = {}
    for zone, zone_records in by_zone.items():
        outstanding = 0
        series: list[tuple[float, int]] = []
        for record in sorted(zone_records, key=lambda r: r.time):
            if record.kind == "preempt":
                outstanding += record.count
            else:
                outstanding = max(outstanding - record.count, 0)
            series.append((record.time, max(desired - outstanding, 0)))
        events[zone] = series
    return from_capacity_events(
        events, duration=duration, step=step, name=name, initial_capacity=desired
    )


def save_capacity_csv(trace: SpotTrace, path: str | Path) -> None:
    """Write a trace as ``zone,time,capacity`` change rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["zone", "time", "capacity"])
        for zone in trace.zone_ids:
            row = trace.zone_row(zone)
            writer.writerow([zone, 0.0, int(row[0])])
            for k in range(1, len(row)):
                if row[k] != row[k - 1]:
                    writer.writerow([zone, k * trace.step, int(row[k])])


def load_capacity_csv(
    path: str | Path,
    *,
    duration: float,
    step: float = 60.0,
    name: str | None = None,
) -> SpotTrace:
    """Load a ``zone,time,capacity`` CSV written by external collectors
    (or by :func:`save_capacity_csv`)."""
    events: dict[str, list[tuple[float, int]]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"zone", "time", "capacity"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(f"CSV must have columns {sorted(required)}")
        for line in reader:
            events.setdefault(line["zone"], []).append(
                (float(line["time"]), int(line["capacity"]))
            )
    return from_capacity_events(
        events,
        duration=duration,
        step=step,
        name=name or Path(path).stem,
    )
