"""Regional price variation and the cost signal of Alg. 1.

Spot prices are "generally stable over time, though there could be cost
differences across zones and regions" (§2.1, citing the SkyPilot
catalog).  SkyServe's controller "periodically polls the cost
information via cloud API used in Algorithm 1" (§4).  This module is
that price book: per-region multipliers over the catalog's base prices,
queried per zone, so Dynamic Placement's ``MIN-COST`` has a real signal
to act on when the same GPU costs different amounts in different
places.

Defaults reflect the familiar pattern of public-cloud list prices: US
East is the reference, US West a hair above, Europe ~10% and Asia ~15%
above.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.cloud.catalog import Catalog, default_catalog

__all__ = ["PriceBook", "default_price_book"]

_DEFAULT_REGION_MULTIPLIERS: dict[str, float] = {
    "aws:us-east-1": 1.00,
    "aws:us-east-2": 1.00,
    "aws:us-west-2": 1.02,
    "aws:eu-central-1": 1.10,
    "gcp:us-central1": 1.00,
    "gcp:us-east1": 1.00,
    "gcp:us-west1": 1.03,
    "gcp:europe-west4": 1.09,
    "gcp:asia-east1": 1.15,
    "azure:eastus": 1.00,
    "azure:westeurope": 1.12,
}


class PriceBook:
    """Per-zone prices: catalog base price x region multiplier."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        region_multipliers: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.catalog = catalog or default_catalog()
        self._multipliers = dict(
            _DEFAULT_REGION_MULTIPLIERS
            if region_multipliers is None
            else region_multipliers
        )
        for region, multiplier in self._multipliers.items():
            if multiplier <= 0:
                raise ValueError(f"non-positive multiplier for {region}")

    @staticmethod
    def _region_of(zone_id: str) -> str:
        return zone_id.rsplit(":", 1)[0]

    def region_multiplier(self, zone_id: str) -> float:
        """Multiplier for a zone's region (1.0 for unlisted regions)."""
        return self._multipliers.get(self._region_of(zone_id), 1.0)

    def spot_hourly(self, zone_id: str, instance_type_name: str) -> float:
        """Spot $/hour for an instance type in a specific zone."""
        itype = self.catalog.get(instance_type_name)
        return itype.spot_hourly * self.region_multiplier(zone_id)

    def on_demand_hourly(self, zone_id: str, instance_type_name: str) -> float:
        itype = self.catalog.get(instance_type_name)
        return itype.on_demand_hourly * self.region_multiplier(zone_id)

    def _cheapest_for_accelerator(
        self, zone_id: str, accelerator: str, *, spot: bool
    ) -> Optional[tuple[str, float]]:
        cloud = zone_id.split(":")[0]
        best: Optional[tuple[str, float]] = None
        for itype in self.catalog.with_accelerator(accelerator):
            if itype.cloud != cloud:
                continue
            if spot:
                price = self.spot_hourly(zone_id, itype.name)
            else:
                price = self.on_demand_hourly(zone_id, itype.name)
            if best is None or price < best[1]:
                best = (itype.name, price)
        return best

    def cheapest_spot_for_accelerator(
        self, zone_id: str, accelerator: str
    ) -> Optional[tuple[str, float]]:
        """(instance type, spot $/h) of the cheapest matching type that
        the zone's cloud offers, or ``None`` if the cloud has none."""
        return self._cheapest_for_accelerator(zone_id, accelerator, spot=True)

    def cheapest_on_demand_for_accelerator(
        self, zone_id: str, accelerator: str
    ) -> Optional[tuple[str, float]]:
        """(instance type, on-demand $/h) of the cheapest matching type
        that the zone's cloud offers, or ``None`` if the cloud has none.

        The spot and on-demand orderings genuinely differ: spot prices
        are ``on_demand * spot_ratio`` and Table 1 ratios vary per type,
        so the cheapest-by-spot instance is not in general the
        cheapest-by-on-demand one.
        """
        return self._cheapest_for_accelerator(zone_id, accelerator, spot=False)

    def zone_costs(
        self, zones: Sequence[str], accelerator: str, *, spot: bool = True
    ) -> dict[str, float]:
        """The Alg. 1 MIN-COST input: per-zone hourly price of the
        cheapest instance with the accelerator.  Zones whose cloud lacks
        the accelerator are omitted."""
        costs: dict[str, float] = {}
        for zone in zones:
            best = self._cheapest_for_accelerator(zone, accelerator, spot=spot)
            if best is None:
                continue
            costs[zone] = best[1]
        return costs


def default_price_book() -> PriceBook:
    return PriceBook()
