"""Instance lifecycle.

An instance moves through::

    PROVISIONING -> INITIALIZING -> READY -> {PREEMPTED, TERMINATED}
         |                |            ^
         +-> FAILED       +-> PREEMPTED/TERMINATED (can die while loading)

* PROVISIONING — the cloud is allocating a VM (capacity search).  Not
  billed.  Ends in FAILED when the zone has no capacity.
* INITIALIZING — the VM is up and the model endpoint is loading (the
  *cold start*).  Billed but not serving; §2.3 measures 183 s total for a
  Llama-2-7B endpoint on AWS, exceeding the 2-minute preemption warning.
* READY — the replica passes its readiness probe and can take traffic.
* PREEMPTED / TERMINATED / FAILED — terminal.  PREEMPTED is cloud-
  initiated (spot reclaim); TERMINATED is user-initiated scale-down.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cloud.catalog import InstanceType

__all__ = ["Instance", "InstanceState", "InstanceCallbacks"]

_instance_ids = itertools.count(1)


class InstanceState(enum.Enum):
    """Lifecycle states of a cloud instance."""

    PROVISIONING = "provisioning"
    INITIALIZING = "initializing"
    READY = "ready"
    PREEMPTED = "preempted"
    TERMINATED = "terminated"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (
            InstanceState.PREEMPTED,
            InstanceState.TERMINATED,
            InstanceState.FAILED,
        )

    @property
    def is_alive(self) -> bool:
        """Holding (or about to hold) a VM: counted against zone capacity."""
        return self in (
            InstanceState.PROVISIONING,
            InstanceState.INITIALIZING,
            InstanceState.READY,
        )


@dataclass
class InstanceCallbacks:
    """Hooks the owning controller registers at launch time.

    Each receives the :class:`Instance`.  ``on_preempt_warning`` fires
    only when the provider is configured with a warning grace period.
    """

    on_ready: Optional[Callable[["Instance"], None]] = None
    on_preempted: Optional[Callable[["Instance"], None]] = None
    on_failed: Optional[Callable[["Instance"], None]] = None
    on_preempt_warning: Optional[Callable[["Instance"], None]] = None


@dataclass
class Instance:
    """A launched (or launching) cloud instance."""

    zone_id: str
    instance_type: InstanceType
    spot: bool
    launched_at: float
    callbacks: InstanceCallbacks = field(default_factory=InstanceCallbacks)
    id: int = field(default_factory=lambda: next(_instance_ids))
    state: InstanceState = InstanceState.PROVISIONING
    billing_started_at: Optional[float] = None
    ready_at: Optional[float] = None
    ended_at: Optional[float] = None
    preempt_warned: bool = False
    #: True when the instance died of an injected hardware/software
    #: fault rather than a spot reclaim (both surface as PREEMPTED).
    crashed: bool = False

    @property
    def hourly_price(self) -> float:
        return self.instance_type.hourly_price(self.spot)

    def transition(self, new_state: InstanceState, time: float) -> None:
        """Apply a state transition, enforcing lifecycle legality."""
        if self.state.is_terminal:
            raise RuntimeError(
                f"instance {self.id}: transition from terminal state {self.state}"
            )
        legal = {
            InstanceState.PROVISIONING: {
                InstanceState.INITIALIZING,
                InstanceState.FAILED,
                InstanceState.PREEMPTED,
                InstanceState.TERMINATED,
            },
            InstanceState.INITIALIZING: {
                InstanceState.READY,
                InstanceState.PREEMPTED,
                InstanceState.TERMINATED,
            },
            InstanceState.READY: {
                InstanceState.PREEMPTED,
                InstanceState.TERMINATED,
            },
        }
        if new_state not in legal[self.state]:
            raise RuntimeError(
                f"instance {self.id}: illegal transition {self.state} -> {new_state}"
            )
        self.state = new_state
        if new_state is InstanceState.INITIALIZING:
            self.billing_started_at = time
        elif new_state is InstanceState.READY:
            self.ready_at = time
        elif new_state.is_terminal:
            self.ended_at = time

    def billed_cost(self, now: float) -> float:
        """Dollars accrued so far (or in total, if terminated).

        Billing runs from the start of INITIALIZING (VM running) to the
        terminal transition — cold start time is billed, matching §2.3.
        """
        if self.billing_started_at is None:
            return 0.0
        end = self.ended_at if self.ended_at is not None else now
        hours = max(end - self.billing_started_at, 0.0) / 3600.0
        return hours * self.hourly_price

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "spot" if self.spot else "od"
        return (
            f"Instance(id={self.id}, {kind} {self.instance_type.name} "
            f"@ {self.zone_id}, {self.state.value})"
        )
