"""Instance catalog and pricing.

Reproduces the pricing facts the paper relies on:

* Table 1 — spot GPU price as a percentage of on-demand price, per cloud
  and GPU generation (prices the authors pulled from cloud APIs on
  2024-10-23).
* The concrete instance types used in the evaluation: ``g5.48xlarge``
  (8×A10G, Llama-2-70B experiments, $16.288/h on-demand vs ~$4.9/h spot),
  ``g4dn.12xlarge`` (4×T4, OPT-6.7B experiments), ``p3.2xlarge`` (1×V100,
  the spot-trace instance), ``a2-ultragpu-4g`` (4×A100 on GCP), and the
  CPU instance ``c3-highcpu-176`` used for the GPU-vs-CPU comparison in
  Fig. 4.

In the real system prices come from cloud APIs; here the catalog is the
authoritative price source the simulated billing meter consults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Catalog",
    "InstanceType",
    "SPOT_DISCOUNT_TABLE",
    "default_catalog",
    "hetero_catalog",
]


@dataclass(frozen=True)
class InstanceType:
    """A launchable machine shape with its pricing.

    ``spot_ratio`` is the spot price as a fraction of the on-demand price
    (Table 1 reports these as percentages).
    """

    name: str
    cloud: str
    accelerator: Optional[str]
    accelerator_count: int
    vcpus: int
    on_demand_hourly: float
    spot_ratio: float

    def __post_init__(self) -> None:
        if self.on_demand_hourly <= 0:
            raise ValueError(f"{self.name}: non-positive on-demand price")
        if not 0.0 < self.spot_ratio <= 1.0:
            raise ValueError(f"{self.name}: spot ratio {self.spot_ratio} outside (0, 1]")
        if self.accelerator is None and self.accelerator_count:
            raise ValueError(f"{self.name}: accelerator_count without accelerator")

    @property
    def spot_hourly(self) -> float:
        """Hourly spot price in dollars."""
        return self.on_demand_hourly * self.spot_ratio

    @property
    def is_gpu(self) -> bool:
        return self.accelerator is not None

    def hourly_price(self, spot: bool) -> float:
        return self.spot_hourly if spot else self.on_demand_hourly


# Table 1 of the paper: spot price as (low, high) fraction of on-demand,
# keyed by (cloud, gpu).  Single-valued cells are stored as (x, x).
SPOT_DISCOUNT_TABLE: dict[tuple[str, str], tuple[float, float]] = {
    ("aws", "A100"): (0.10, 0.10),
    ("aws", "V100"): (0.08, 0.25),
    ("aws", "T4"): (0.13, 0.17),
    ("aws", "K80"): (0.13, 0.25),
    ("azure", "A100"): (0.50, 0.50),
    ("azure", "V100"): (0.25, 0.25),
    ("azure", "T4"): (0.10, 0.10),
    ("azure", "K80"): (0.10, 0.10),
    ("gcp", "A100"): (0.33, 0.33),
    ("gcp", "V100"): (0.33, 0.33),
    ("gcp", "T4"): (0.14, 0.20),
    ("gcp", "K80"): (0.10, 0.10),
}


class Catalog:
    """Lookup table of :class:`InstanceType` by name."""

    def __init__(self, instance_types: list[InstanceType]) -> None:
        self._types: dict[str, InstanceType] = {}
        for itype in instance_types:
            if itype.name in self._types:
                raise ValueError(f"duplicate instance type {itype.name!r}")
            self._types[itype.name] = itype

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self):
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def get(self, name: str) -> InstanceType:
        itype = self._types.get(name)
        if itype is None:
            raise KeyError(f"unknown instance type {name!r}")
        return itype

    def with_accelerator(self, accelerator: str) -> list[InstanceType]:
        """All instance types carrying the given accelerator."""
        return [t for t in self._types.values() if t.accelerator == accelerator]

    def spot_discount(self, cloud: str, accelerator: str) -> tuple[float, float]:
        """Table 1 lookup: (low, high) spot/on-demand price ratio."""
        key = (cloud.lower(), accelerator)
        if key not in SPOT_DISCOUNT_TABLE:
            raise KeyError(f"no Table 1 entry for cloud={cloud!r} gpu={accelerator!r}")
        return SPOT_DISCOUNT_TABLE[key]


def default_catalog() -> Catalog:
    """The catalog used throughout the reproduction.

    On-demand prices match public us-region list prices at the paper's
    snapshot date; spot ratios sit inside the Table 1 ranges.  The paper
    reports g5.48xlarge at $16.3/h on-demand and $4.9/h spot (§2.4), which
    pins its spot ratio at 0.30.
    """
    return Catalog(
        [
            InstanceType(
                name="g5.48xlarge",
                cloud="aws",
                accelerator="A10G",
                accelerator_count=8,
                vcpus=192,
                on_demand_hourly=16.288,
                spot_ratio=0.30,
            ),
            InstanceType(
                name="g4dn.12xlarge",
                cloud="aws",
                accelerator="T4",
                accelerator_count=4,
                vcpus=48,
                on_demand_hourly=3.912,
                spot_ratio=0.15,
            ),
            InstanceType(
                name="p3.2xlarge",
                cloud="aws",
                accelerator="V100",
                accelerator_count=1,
                vcpus=8,
                on_demand_hourly=3.06,
                spot_ratio=0.25,
            ),
            InstanceType(
                name="p3.8xlarge",
                cloud="aws",
                accelerator="V100",
                accelerator_count=4,
                vcpus=32,
                on_demand_hourly=12.24,
                spot_ratio=0.25,
            ),
            InstanceType(
                name="a2-ultragpu-4g",
                cloud="gcp",
                accelerator="A100",
                accelerator_count=4,
                vcpus=48,
                on_demand_hourly=20.55,
                spot_ratio=0.33,
            ),
            InstanceType(
                name="a2-highgpu-1g",
                cloud="gcp",
                accelerator="A100",
                accelerator_count=1,
                vcpus=12,
                on_demand_hourly=3.67,
                spot_ratio=0.33,
            ),
            InstanceType(
                name="n1-standard-8-t4",
                cloud="gcp",
                accelerator="T4",
                accelerator_count=1,
                vcpus=8,
                on_demand_hourly=0.73,
                spot_ratio=0.17,
            ),
            InstanceType(
                name="c3-highcpu-176",
                cloud="gcp",
                accelerator=None,
                accelerator_count=0,
                vcpus=176,
                on_demand_hourly=7.25,
                spot_ratio=0.25,
            ),
            InstanceType(
                name="Standard_NC24ads_A100_v4",
                cloud="azure",
                accelerator="A100",
                accelerator_count=1,
                vcpus=24,
                on_demand_hourly=3.67,
                spot_ratio=0.50,
            ),
            InstanceType(
                name="Standard_NC6s_v3",
                cloud="azure",
                accelerator="V100",
                accelerator_count=1,
                vcpus=6,
                on_demand_hourly=3.06,
                spot_ratio=0.25,
            ),
        ]
    )


def hetero_catalog() -> Catalog:
    """The default catalog plus the heterogeneous-fleet GPU generations.

    Adds L4, AWS A100, and H100 shapes so a serving fleet can mix GPU
    classes with genuinely different price/throughput/preemption
    profiles (see :mod:`repro.cloud.gpus`).  The default catalog is a
    strict subset, so anything resolved against it resolves identically
    here.  These generations post-date the paper's Table 1 snapshot, so
    their spot ratios live here (following the same public-price
    pattern: AWS discounts scarce GPUs less deeply, GCP holds ~1/3)
    rather than in :data:`SPOT_DISCOUNT_TABLE`, which stays pinned to
    the paper's 12 cells.
    """
    extra = [
        InstanceType(
            name="g6.48xlarge",
            cloud="aws",
            accelerator="L4",
            accelerator_count=8,
            vcpus=192,
            on_demand_hourly=13.35,
            spot_ratio=0.32,
        ),
        InstanceType(
            name="g2-standard-48",
            cloud="gcp",
            accelerator="L4",
            accelerator_count=4,
            vcpus=48,
            on_demand_hourly=4.21,
            spot_ratio=0.35,
        ),
        InstanceType(
            name="p4d.24xlarge",
            cloud="aws",
            accelerator="A100",
            accelerator_count=8,
            vcpus=96,
            on_demand_hourly=32.77,
            spot_ratio=0.10,
        ),
        InstanceType(
            name="p5.48xlarge",
            cloud="aws",
            accelerator="H100",
            accelerator_count=8,
            vcpus=192,
            on_demand_hourly=98.32,
            spot_ratio=0.26,
        ),
        InstanceType(
            name="a3-highgpu-8g",
            cloud="gcp",
            accelerator="H100",
            accelerator_count=8,
            vcpus=208,
            on_demand_hourly=88.25,
            spot_ratio=0.33,
        ),
    ]
    return Catalog(list(default_catalog()) + extra)
