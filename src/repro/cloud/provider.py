"""Simulated multi-cloud provider.

Plays the role AWS/GCP/Azure play in the real SkyServe deployment: it
accepts launch requests for spot or on-demand instances in specific
zones, enforces per-zone spot capacity from a :class:`SpotTrace`, preempts
running spot instances when capacity drops, applies provisioning and
cold-start delays, and bills every instance through a
:class:`BillingMeter`.

Policies never see the underlying trace — like real clients they only
observe launch successes/failures, readiness, and preemptions.  The
Omniscient ILP baseline is the one consumer allowed to read the trace
directly (the paper calls it "infeasible in practice").

Timing model (defaults follow §2.3):

* ``provision_delay`` — time from launch request to a running VM, drawn
  per-launch with jitter (default mean 60 s).
* ``setup_delay`` — model download + load into GPU (default mean 120 s);
  provisioning + setup ≈ 183 s, the paper's measured cold start for a
  Llama-2-7B vLLM endpoint.  Billing starts when the VM is running, so
  cold-start time costs money.
* ``failure_detect_delay`` — how long a capacity-exhausted launch attempt
  takes to report failure (default 30 s).
* ``preempt_warning`` — optional best-effort grace between the preemption
  warning and the kill (0 disables; AWS offers 120 s, GCP/Azure 30 s).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.catalog import Catalog, default_catalog
from repro.cloud.instance import Instance, InstanceCallbacks, InstanceState
from repro.cloud.topology import Topology, default_topology
from repro.cloud.traces import SpotTrace
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import Counter
from repro.sim.rng import RngRegistry
from repro.telemetry.events import ZoneCapacity

__all__ = ["CloudConfig", "SimCloud"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class CloudConfig:
    """Timing and behaviour knobs of the simulated provider."""

    provision_delay_mean: float = 60.0
    setup_delay_mean: float = 120.0
    delay_jitter: float = 0.15
    failure_detect_delay: float = 30.0
    preempt_warning: float = 0.0
    on_demand_capacity: Optional[int] = None  # None = unlimited per zone
    #: Mean time between injected instance faults (hardware errors,
    #: kernel panics, ...), exponential per ready instance; None
    #: disables fault injection.  Faults hit spot and on-demand alike.
    instance_mtbf: Optional[float] = None

    def __post_init__(self) -> None:
        if self.provision_delay_mean < 0 or self.setup_delay_mean < 0:
            raise ValueError("negative delay means")
        if not 0.0 <= self.delay_jitter < 1.0:
            raise ValueError(f"delay_jitter {self.delay_jitter} outside [0, 1)")
        if self.failure_detect_delay < 0 or self.preempt_warning < 0:
            raise ValueError("negative delays")
        if self.instance_mtbf is not None and self.instance_mtbf <= 0:
            raise ValueError("instance_mtbf must be positive when set")

    @property
    def cold_start_mean(self) -> float:
        """Mean end-to-end time from request to READY, absent failures."""
        return self.provision_delay_mean + self.setup_delay_mean


class SimCloud:
    """The simulated provider: launch, preempt, terminate, bill."""

    def __init__(
        self,
        engine: SimulationEngine,
        trace: SpotTrace,
        *,
        topology: Optional[Topology] = None,
        catalog: Optional[Catalog] = None,
        config: Optional[CloudConfig] = None,
        rng: Optional[RngRegistry] = None,
    ) -> None:
        self.engine = engine
        self.trace = trace
        self.topology = topology or default_topology()
        self.catalog = catalog or default_catalog()
        self.config = config or CloudConfig()
        self._rng = (rng or RngRegistry(0)).stream("cloud")
        self.billing = BillingMeter()
        self.preemptions = Counter("preemptions")
        self.launch_failures = Counter("launch_failures")
        self.crashes = Counter("instance_crashes")
        self.preemptions_by_zone: dict[str, int] = {z: 0 for z in trace.zone_ids}
        self._alive: dict[str, list[Instance]] = {z: [] for z in trace.zone_ids}
        self._od_alive: dict[str, list[Instance]] = {}
        self._doomed: set[int] = set()  # instances warned, awaiting the kill
        #: Chaos seam (:class:`repro.chaos.injector.ChaosInjector`):
        #: called per pre-warning with ``(zone_id, kill_time)``.  Return
        #: ``None`` to suppress the warning entirely (the instances are
        #: reclaimed unwarned at the drop), a positive number of seconds
        #: to delay its delivery, or ``0.0`` to deliver normally.  Unset
        #: (the default) costs nothing on the warning path.
        self.warning_gate: Optional[Callable[[str, float], Optional[float]]] = None
        self._schedule_capacity_events()

    # ------------------------------------------------------------------
    # Capacity bookkeeping
    # ------------------------------------------------------------------
    def _schedule_capacity_events(self) -> None:
        """Schedule a callback at every grid step where capacity changes.

        With a warning grace configured, capacity *drops* additionally
        schedule a best-effort pre-warning ``preempt_warning`` seconds
        earlier — the cloud knows its own reclaim decisions ahead of
        time, which is exactly what the real termination notices are.
        """
        warn = self.config.preempt_warning
        for zone_id in self.trace.zone_ids:
            row = self.trace.zone_row(zone_id)
            for k in range(1, len(row)):
                if row[k] == row[k - 1]:
                    continue
                time = k * self.trace.step
                self.engine.call_at(
                    time,
                    lambda z=zone_id, cap=int(row[k]): self._on_capacity_change(z, cap),
                )
                if warn > 0 and row[k] < row[k - 1] and time - warn >= 0:
                    self.engine.call_at(
                        time - warn,
                        lambda z=zone_id, cap=int(row[k]), t=time: self._pre_warn(
                            z, cap, t
                        ),
                    )

    def spot_usage(self, zone_id: str) -> int:
        """Alive spot instances holding capacity in the zone."""
        return len(self._alive.get(zone_id, []))

    def spot_room(self, zone_id: str) -> int:
        """Remaining launchable spot slots in the zone right now."""
        capacity = self.trace.capacity_at(zone_id, self.engine.now)
        return max(capacity - self.spot_usage(zone_id), 0)

    def _pre_warn(self, zone_id: str, new_capacity: int, kill_time: float) -> None:
        """Issue termination notices ahead of a scheduled capacity drop.

        Victims are chosen now, notified, and killed exactly at the
        drop.  Instances launched after the warning are not covered —
        they get reclaimed unwarned at the drop, which mirrors how real
        best-effort notices miss late arrivals.
        """
        gate = self.warning_gate
        if gate is not None:
            action = gate(zone_id, kill_time)
            if action is None:
                return  # suppressed: unwarned reclaim at the drop
            if action > 0:
                resume = self.engine.now + action
                if resume >= kill_time:
                    return  # delayed past the kill: warning is useless
                self.engine.call_at(
                    resume, lambda: self._pre_warn(zone_id, new_capacity, kill_time)
                )
                return
        alive = self._alive[zone_id]
        already_doomed = sum(1 for i in alive if i.id in self._doomed)
        excess = (len(alive) - already_doomed) - new_capacity
        candidates = [i for i in alive if i.id not in self._doomed]
        excess = min(excess, len(candidates))
        if excess <= 0:
            return
        victims = self._rng.choice(len(candidates), size=excess, replace=False)
        for index in sorted(victims, reverse=True):
            instance = candidates[index]
            instance.preempt_warned = True
            self._doomed.add(instance.id)
            if instance.callbacks.on_preempt_warning is not None:
                instance.callbacks.on_preempt_warning(instance)
            self.engine.call_at(kill_time, lambda i=instance: self._kill(i))

    def _on_capacity_change(self, zone_id: str, new_capacity: int) -> None:
        logger.debug(
            "t=%.1f zone %s spot capacity -> %d", self.engine.now, zone_id, new_capacity
        )
        bus = self.engine.telemetry
        if bus.enabled:
            bus.emit(
                ZoneCapacity(
                    time=self.engine.now, zone=zone_id, capacity=new_capacity
                )
            )
        alive = self._alive[zone_id]
        # Doomed instances die via their own scheduled kills at this
        # same timestamp; count only the survivors against capacity.
        candidates = [i for i in alive if i.id not in self._doomed]
        excess = len(candidates) - new_capacity
        if excess <= 0:
            return
        # The provider reclaims arbitrary instances; we draw victims
        # uniformly from a dedicated stream for determinism.
        victims = self._rng.choice(len(candidates), size=excess, replace=False)
        for index in sorted(victims, reverse=True):
            self._kill(candidates[index])

    def _kill(self, instance: Instance) -> None:
        if instance.state.is_terminal:
            return
        self._remove_alive(instance)
        self._doomed.discard(instance.id)
        if instance.state is InstanceState.PROVISIONING:
            # Capacity vanished before the VM was acquired: the launch
            # attempt fails rather than "preempting" a VM we never had.
            instance.transition(InstanceState.FAILED, self.engine.now)
            self.launch_failures.add()
            if instance.callbacks.on_failed is not None:
                instance.callbacks.on_failed(instance)
            return
        instance.transition(InstanceState.PREEMPTED, self.engine.now)
        if not instance.crashed:
            # Crashes are tallied separately; only spot reclaims count
            # as market preemptions.
            self.preemptions.add()
            self.preemptions_by_zone[instance.zone_id] = (
                self.preemptions_by_zone.get(instance.zone_id, 0) + 1
            )
        if instance.callbacks.on_preempted is not None:
            instance.callbacks.on_preempted(instance)

    def _remove_alive(self, instance: Instance) -> None:
        pool = self._alive if instance.spot else self._od_alive
        instances = pool.get(instance.zone_id)
        if instances and instance in instances:
            instances.remove(instance)

    # ------------------------------------------------------------------
    # Launch / terminate API (what policies interact with)
    # ------------------------------------------------------------------
    def request_instance(
        self,
        zone_id: str,
        instance_type_name: str,
        *,
        spot: bool,
        callbacks: Optional[InstanceCallbacks] = None,
    ) -> Instance:
        """Request an instance.  Returns immediately with a PROVISIONING
        instance; outcomes arrive through the callbacks.

        A spot request in a zone with no free capacity fails after
        ``failure_detect_delay`` (the InsufficientCapacity error path).
        """
        if spot and zone_id not in self._alive:
            raise KeyError(f"zone {zone_id!r} not covered by trace {self.trace.name!r}")
        itype = self.catalog.get(instance_type_name)
        instance = Instance(
            zone_id=zone_id,
            instance_type=itype,
            spot=spot,
            launched_at=self.engine.now,
            callbacks=callbacks or InstanceCallbacks(),
        )
        self.billing.track(instance)
        if spot:
            if self.spot_room(zone_id) <= 0:
                self.engine.call_after(
                    self.config.failure_detect_delay, lambda: self._fail_launch(instance)
                )
                return instance
            self._alive[zone_id].append(instance)
        else:
            od_pool = self._od_alive.setdefault(zone_id, [])
            capacity = self.config.on_demand_capacity
            if capacity is not None and len(od_pool) >= capacity:
                self.engine.call_after(
                    self.config.failure_detect_delay, lambda: self._fail_launch(instance)
                )
                return instance
            od_pool.append(instance)
        provision = self._jittered(self.config.provision_delay_mean)
        self.engine.call_after(provision, lambda: self._vm_running(instance))
        return instance

    def _jittered(self, mean: float) -> float:
        if mean == 0:
            return 0.0
        jitter = self.config.delay_jitter
        if jitter == 0:
            return mean
        low, high = mean * (1 - jitter), mean * (1 + jitter)
        return float(self._rng.uniform(low, high))

    def _fail_launch(self, instance: Instance) -> None:
        if instance.state.is_terminal:
            return
        instance.transition(InstanceState.FAILED, self.engine.now)
        self.launch_failures.add()
        if instance.callbacks.on_failed is not None:
            instance.callbacks.on_failed(instance)

    def _vm_running(self, instance: Instance) -> None:
        if instance.state is not InstanceState.PROVISIONING:
            return  # already killed or failed
        instance.transition(InstanceState.INITIALIZING, self.engine.now)
        setup = self._jittered(self.config.setup_delay_mean)
        self.engine.call_after(setup, lambda: self._endpoint_ready(instance))

    def _endpoint_ready(self, instance: Instance) -> None:
        if instance.state is not InstanceState.INITIALIZING:
            return
        instance.transition(InstanceState.READY, self.engine.now)
        if self.config.instance_mtbf is not None:
            delay = float(self._rng.exponential(self.config.instance_mtbf))
            self.engine.call_after(delay, lambda: self._crash(instance))
        if instance.callbacks.on_ready is not None:
            instance.callbacks.on_ready(instance)

    def _crash(self, instance: Instance) -> None:
        """Injected instance fault: kill the instance like a preemption
        but tagged, so callers can distinguish faults from reclaims."""
        if instance.state.is_terminal:
            return
        instance.crashed = True
        self.crashes.add()
        self._kill(instance)

    def terminate(self, instance: Instance) -> None:
        """User-initiated scale-down.  Idempotent on dead instances."""
        if instance.state.is_terminal:
            return
        self._remove_alive(instance)
        self._doomed.discard(instance.id)
        instance.transition(InstanceState.TERMINATED, self.engine.now)

    # ------------------------------------------------------------------
    # Admission-control seams (repro.control.CapacityBroker)
    # ------------------------------------------------------------------
    def reclaim(self, instance: Instance) -> None:
        """Provider-initiated eviction of a specific instance.

        Used by multi-tenant admission control (strict-priority mode
        evicting a lower-priority tenant's spot replica).  The victim
        experiences an ordinary preemption — same callbacks, counters,
        and billing as a capacity-drop reclaim — because from a tenant's
        point of view losing capacity to another account *is* a
        preemption.  Idempotent on dead instances.
        """
        self._kill(instance)

    def reject_instance(
        self,
        zone_id: str,
        instance_type_name: str,
        *,
        spot: bool,
        callbacks: Optional[InstanceCallbacks] = None,
    ) -> Instance:
        """Deny a launch request: the admission-control analogue of the
        no-capacity path of :meth:`request_instance`.

        The caller gets a PROVISIONING instance whose launch fails after
        ``failure_detect_delay`` — byte-for-byte the InsufficientCapacity
        timing — so policies observe quota denials exactly like capacity
        exhaustion and their Alg. 1 bookkeeping reacts identically.
        """
        itype = self.catalog.get(instance_type_name)
        instance = Instance(
            zone_id=zone_id,
            instance_type=itype,
            spot=spot,
            launched_at=self.engine.now,
            callbacks=callbacks or InstanceCallbacks(),
        )
        self.billing.track(instance)
        self.engine.call_after(
            self.config.failure_detect_delay, lambda: self._fail_launch(instance)
        )
        return instance
