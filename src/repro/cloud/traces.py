"""Spot obtainability traces: format, statistics, and synthetic generators.

The paper's §5.2 replays *real* spot obtainability traces collected by
maintaining a desired number of spot instances and recording preemptions
and launch failures (traces AWS 1–3 and GCP 1 from Wu et al., NSDI '24).
Those trace files require cloud accounts to re-collect, so this module
provides:

* :class:`SpotTrace` — a per-zone, fixed-step *launchable capacity* step
  function.  Capacity 0 means the zone cannot provide any spot instance
  of the target type at that moment (unavailability); a capacity drop
  below current usage preempts the excess instances.
* ``make_correlated_trace`` — a generator that reproduces the statistical
  structure §2.2/§2.3 document: per-zone ON/OFF renewal processes plus a
  *regional shock* process that takes down several zones of the same
  region together (intra-region correlation ≥ 0.3, near-zero inter-region
  correlation), heterogeneous per-zone preemption rates, and tunable
  availability.
* Canned trace builders ``aws1/aws2/aws3/gcp1/cpu_trace`` calibrated to
  the durations, zone counts, and availability statistics the paper
  reports for each dataset.

Traces serialise to JSON so experiments can be archived and replayed.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.cloud.topology import Topology, Zone, default_topology
from repro.sim.rng import RngRegistry

__all__ = [
    "SpotTrace",
    "TraceZoneSpec",
    "make_correlated_trace",
    "aws1",
    "aws2",
    "aws3",
    "gcp1",
    "cpu_trace",
    "DAY",
    "HOUR",
    "WEEK",
]

HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY


class SpotTrace:
    """Per-zone launchable spot capacity over time, on a fixed grid.

    ``capacity[i, k]`` is the number of spot instances launchable in zone
    ``zone_ids[i]`` during ``[k * step, (k + 1) * step)``.
    """

    def __init__(
        self,
        name: str,
        zone_ids: Sequence[str],
        step: float,
        capacity: ArrayLike,
        *,
        chaos_digest: Optional[str] = None,
    ) -> None:
        grid: NDArray[np.int64] = np.asarray(capacity, dtype=np.int64)
        if grid.ndim != 2:
            raise ValueError("capacity must be a 2-D (zones x steps) array")
        if grid.shape[0] != len(zone_ids):
            raise ValueError(
                f"{grid.shape[0]} capacity rows for {len(zone_ids)} zones"
            )
        if (grid < 0).any():
            raise ValueError("negative capacity in trace")
        if step <= 0:
            raise ValueError(f"non-positive step {step!r}")
        if len(set(zone_ids)) != len(zone_ids):
            raise ValueError("duplicate zone ids in trace")
        self.name = name
        self.zone_ids = list(zone_ids)
        self.step = float(step)
        self.capacity = grid
        #: Digest of the chaos scenario this trace was transformed by
        #: (:func:`repro.chaos.overlay.compile_scenario`), ``None`` for
        #: pristine traces.  Folded into :meth:`digest` so result caches
        #: never serve a no-chaos entry for a chaos run — even when the
        #: scenario leaves the capacity grid itself unchanged (e.g. pure
        #: cold-start or price injections).
        self.chaos_digest = chaos_digest
        self._zone_index = {zone_id: i for i, zone_id in enumerate(self.zone_ids)}
        #: Memoised content digest; traces are immutable by convention.
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Content digest of the trace (name, zones, step, capacity).

        Stable across processes and platform word sizes — the capacity
        grid is hashed in a fixed dtype and byte order — so it can key
        on-disk caches of replay results (see
        :class:`repro.experiments.results.ReplayCache`).  Computed once
        and memoised; traces are immutable by convention.
        """
        if self._digest is not None:
            return self._digest
        hasher = hashlib.sha256()
        fields: dict[str, object] = {
            "name": self.name,
            "zones": self.zone_ids,
            "step": self.step,
        }
        if self.chaos_digest is not None:
            # Only present for chaos-transformed traces, so pristine
            # traces keep their pre-chaos digests (and cache entries).
            fields["chaos"] = self.chaos_digest
        header = json.dumps(fields, sort_keys=True)
        hasher.update(header.encode())
        hasher.update(np.ascontiguousarray(self.capacity, dtype="<i8").tobytes())
        self._digest = hasher.hexdigest()
        return self._digest

    @property
    def n_steps(self) -> int:
        return self.capacity.shape[1]

    @property
    def duration(self) -> float:
        """Total trace length in seconds."""
        return self.n_steps * self.step

    @property
    def regions(self) -> list[str]:
        """Region ids present in the trace, in first-seen order."""
        seen: dict[str, None] = {}
        for zone_id in self.zone_ids:
            seen.setdefault(_region_of(zone_id), None)
        return list(seen)

    def zone_row(self, zone_id: str) -> NDArray[np.int64]:
        index = self._zone_index.get(zone_id)
        if index is None:
            raise KeyError(f"zone {zone_id!r} not in trace {self.name!r}")
        return self.capacity[index]

    def step_index(self, time: float) -> int:
        """Grid index containing simulated ``time`` (clamped to the end)."""
        if time < 0:
            raise ValueError(f"negative time {time!r}")
        return min(int(time // self.step), self.n_steps - 1)

    def capacity_at(self, zone_id: str, time: float) -> int:
        """Launchable spot capacity in ``zone_id`` at ``time``."""
        return int(self.zone_row(zone_id)[self.step_index(time)])

    # ------------------------------------------------------------------
    # Statistics used in the paper's analysis figures
    # ------------------------------------------------------------------
    def availability(self, zone_id: str, threshold: int = 1) -> float:
        """Fraction of time the zone can provide >= ``threshold`` instances."""
        row = self.zone_row(zone_id)
        return float((row >= threshold).mean())

    def pooled_availability(
        self, zone_ids: Optional[Iterable[str]] = None, threshold: int = 1
    ) -> float:
        """Fraction of time the *pool* of zones has >= ``threshold`` total
        capacity — the Fig. 5 metric as the search space widens."""
        ids = list(zone_ids) if zone_ids is not None else self.zone_ids
        rows = np.stack([self.zone_row(z) for z in ids])
        return float((rows.sum(axis=0) >= threshold).mean())

    def region_blackout_fraction(self, region_id: str) -> float:
        """Fraction of time *all* zones of a region are simultaneously
        unavailable (§2.2 reports 33.1% for a region of AWS 2)."""
        rows = [
            self.zone_row(z) for z in self.zone_ids if _region_of(z) == region_id
        ]
        if not rows:
            raise KeyError(f"region {region_id!r} not in trace {self.name!r}")
        stacked = np.stack(rows)
        return float((stacked.sum(axis=0) == 0).mean())

    def preemption_indicator(self, zone_id: str) -> NDArray[np.bool_]:
        """Boolean series: capacity strictly dropped in this grid step.

        Used as the per-interval preemption events for the Fig. 3
        correlation analysis.
        """
        row = self.zone_row(zone_id)
        indicator = np.zeros(self.n_steps, dtype=bool)
        indicator[1:] = row[1:] < row[:-1]
        return indicator

    def subset(self, zone_ids: Sequence[str], name: Optional[str] = None) -> SpotTrace:
        """A new trace restricted to the given zones."""
        rows = np.stack([self.zone_row(z) for z in zone_ids])
        return SpotTrace(
            name or f"{self.name}-subset",
            list(zone_ids),
            self.step,
            rows,
            chaos_digest=self.chaos_digest,
        )

    def window(self, start: float, end: float, name: Optional[str] = None) -> SpotTrace:
        """A new trace restricted to the time window ``[start, end)``.

        ``start`` and ``end`` are clamped to the trace and snapped to
        grid steps.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        first = max(int(start // self.step), 0)
        last = min(int(math.ceil(end / self.step)), self.n_steps)
        if last <= first:
            raise ValueError(f"window [{start}, {end}) outside trace")
        return SpotTrace(
            name or f"{self.name}[{first}:{last}]",
            self.zone_ids,
            self.step,
            self.capacity[:, first:last],
            chaos_digest=self.chaos_digest,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload: dict[str, object] = {
            "name": self.name,
            "zone_ids": self.zone_ids,
            "step": self.step,
            "capacity": self.capacity.tolist(),
        }
        if self.chaos_digest is not None:
            payload["chaos_digest"] = self.chaos_digest
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> SpotTrace:
        data = json.loads(text)
        return cls(
            name=data["name"],
            zone_ids=data["zone_ids"],
            step=data["step"],
            capacity=np.asarray(data["capacity"], dtype=np.int64),
            chaos_digest=data.get("chaos_digest"),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> SpotTrace:
        return cls.from_json(Path(path).read_text())


def _region_of(zone_id: str) -> str:
    cloud, region, _zone = zone_id.split(":")
    return f"{cloud}:{region}"


@dataclass(frozen=True)
class TraceZoneSpec:
    """Per-zone generator parameters.

    ``mean_up`` / ``mean_down`` are the mean durations (seconds) of the
    zone's available / unavailable periods; ``capacity_up`` is the
    launchable capacity while available.  Highly-preempting zones get
    short ``mean_up``.
    """

    zone_id: str
    mean_up: float
    mean_down: float
    capacity_up: int

    def __post_init__(self) -> None:
        if self.mean_up <= 0 or self.mean_down <= 0:
            raise ValueError(f"{self.zone_id}: non-positive mean durations")
        if self.capacity_up <= 0:
            raise ValueError(f"{self.zone_id}: non-positive capacity")


def _onoff_series(
    n_steps: int,
    step: float,
    mean_up: float,
    mean_down: float,
    rng: np.random.Generator,
) -> NDArray[np.bool_]:
    """Alternating ON/OFF renewal process sampled on the grid.

    Durations are exponential; the process starts ON with probability
    equal to its stationary availability.
    """
    availability = mean_up / (mean_up + mean_down)
    on = rng.random() < availability
    series = np.zeros(n_steps, dtype=bool)
    t = 0.0
    horizon = n_steps * step
    while t < horizon:
        duration = rng.exponential(mean_up if on else mean_down)
        start = int(t // step)
        end = min(int((t + duration) // step) + 1, n_steps)
        if on:
            series[start:end] = True
        t += duration
        on = not on
    return series


def make_correlated_trace(
    name: str,
    zone_specs: Sequence[TraceZoneSpec],
    duration: float,
    *,
    step: float = 60.0,
    region_shock_rate: float = 0.0,
    region_shock_mean_duration: float = 600.0,
    region_shock_affect_prob: float = 0.9,
    diurnal_amplitude: float = 0.0,
    diurnal_peak_hour: float = 14.0,
    seed: int = 0,
) -> SpotTrace:
    """Generate a spot trace with intra-region correlated preemptions.

    Each zone follows its own ON/OFF renewal process (independent across
    zones).  On top of that, each *region* draws shock events from a
    Poisson process with ``region_shock_rate`` (events per second); a
    shock lasts ``Exp(region_shock_mean_duration)`` and knocks out each
    zone of the region independently with ``region_shock_affect_prob``.
    Shocks create the simultaneous intra-region preemptions of Fig. 3
    while leaving zones in different regions uncorrelated.

    ``diurnal_amplitude`` (0–1) adds a time-of-day pattern: spot
    capacity dips around ``diurnal_peak_hour`` local demand peak (when
    on-demand customers take the hardware) and recovers at night —
    capacity is scaled by ``1 − amplitude · max(0, sin(phase))``.
    """
    if duration <= 0:
        raise ValueError(f"non-positive duration {duration!r}")
    if not 0.0 <= diurnal_amplitude <= 1.0:
        raise ValueError(f"diurnal_amplitude {diurnal_amplitude} outside [0, 1]")
    registry = RngRegistry(seed)
    n_steps = max(int(round(duration / step)), 1)
    n_zones = len(zone_specs)
    capacity = np.zeros((n_zones, n_steps), dtype=np.int64)

    for i, spec in enumerate(zone_specs):
        rng = registry.stream(f"zone:{spec.zone_id}")
        on = _onoff_series(n_steps, step, spec.mean_up, spec.mean_down, rng)
        capacity[i, on] = spec.capacity_up

    if diurnal_amplitude > 0:
        times = np.arange(n_steps) * step
        # Phase 0 at the demand peak: capacity is lowest there.
        phase = 2 * np.pi * (times / 86400.0 - diurnal_peak_hour / 24.0)
        squeeze = 1.0 - diurnal_amplitude * np.maximum(np.cos(phase), 0.0)
        capacity = np.floor(capacity * squeeze[None, :]).astype(np.int64)

    if region_shock_rate > 0:
        regions: dict[str, list[int]] = {}
        for i, spec in enumerate(zone_specs):
            regions.setdefault(_region_of(spec.zone_id), []).append(i)
        for region_id, zone_rows in regions.items():
            rng = registry.stream(f"shock:{region_id}")
            t = rng.exponential(1.0 / region_shock_rate)
            while t < duration:
                shock_len = rng.exponential(region_shock_mean_duration)
                start = int(t // step)
                end = min(int((t + shock_len) // step) + 1, n_steps)
                for row in zone_rows:
                    if rng.random() < region_shock_affect_prob:
                        capacity[row, start:end] = 0
                t += rng.exponential(1.0 / region_shock_rate)

    return SpotTrace(name, [s.zone_id for s in zone_specs], step, capacity)


# ----------------------------------------------------------------------
# Canned datasets calibrated to the paper's §5.2 trace descriptions
# ----------------------------------------------------------------------


def _zone_ids(topology: Topology, region_ids: Sequence[str]) -> list[Zone]:
    zones: list[Zone] = []
    for region_id in region_ids:
        zones.extend(topology.zones_in_region(region_id))
    return zones


def aws1(seed: int = 1, topology: Optional[Topology] = None) -> SpotTrace:
    """AWS 1: 2-week trace, 4 p3.2xlarge, 3 zones of one region.

    Moderately volatile: single-region deployment sees correlated
    preemptions but the region is rarely fully blacked out.
    """
    topology = topology or default_topology()
    zones = topology.zones_in_region("aws:us-west-2")
    specs = [
        TraceZoneSpec(zones[0].id, mean_up=10 * HOUR, mean_down=2 * HOUR, capacity_up=4),
        TraceZoneSpec(zones[1].id, mean_up=5 * HOUR, mean_down=3 * HOUR, capacity_up=4),
        TraceZoneSpec(zones[2].id, mean_up=2 * HOUR, mean_down=4 * HOUR, capacity_up=4),
    ]
    return make_correlated_trace(
        "AWS 1",
        specs,
        duration=2 * WEEK,
        region_shock_rate=1.0 / (18 * HOUR),
        region_shock_mean_duration=1.5 * HOUR,
        region_shock_affect_prob=0.85,
        seed=seed,
    )


def aws2(seed: int = 2, topology: Optional[Topology] = None) -> SpotTrace:
    """AWS 2: 3-week trace, 16 p3.2xlarge, 3 zones of one region.

    Calibrated so all zones of the region are simultaneously unavailable
    roughly a third of the time (§2.2 reports 33.1%), making it the trace
    where single-region policies collapse.
    """
    topology = topology or default_topology()
    zones = topology.zones_in_region("aws:us-east-1")[:3]
    specs = [
        TraceZoneSpec(zones[0].id, mean_up=4 * HOUR, mean_down=3 * HOUR, capacity_up=16),
        TraceZoneSpec(zones[1].id, mean_up=3 * HOUR, mean_down=4 * HOUR, capacity_up=16),
        TraceZoneSpec(zones[2].id, mean_up=2 * HOUR, mean_down=5 * HOUR, capacity_up=16),
    ]
    return make_correlated_trace(
        "AWS 2",
        specs,
        duration=3 * WEEK,
        region_shock_rate=1.0 / (8 * HOUR),
        region_shock_mean_duration=2.5 * HOUR,
        region_shock_affect_prob=0.95,
        seed=seed,
    )


def aws3(seed: int = 3, topology: Optional[Topology] = None) -> SpotTrace:
    """AWS 3: 2-month trace, p3.2xlarge, 9 zones across 3 regions.

    The wide trace behind Figs. 3c and 5b: zones within each region share
    shocks; different regions are independent, so pooled availability
    climbs towards ~99% as regions are added (68.2% → 99.2% for V100).
    """
    topology = topology or default_topology()
    zones = _zone_ids(topology, ["aws:us-east-1", "aws:us-east-2", "aws:us-west-2"])
    assert len(zones) == 9, "AWS 3 expects 9 zones across 3 regions"
    base = [
        (14 * HOUR, 3 * HOUR),
        (11 * HOUR, 3 * HOUR),
        (8 * HOUR, 4 * HOUR),
        (12 * HOUR, 2 * HOUR),
        (9 * HOUR, 3 * HOUR),
        (7 * HOUR, 4 * HOUR),
        (11 * HOUR, 2 * HOUR),
        (5 * HOUR, 5 * HOUR),
        (9 * HOUR, 4 * HOUR),
    ]
    specs = [
        TraceZoneSpec(zone.id, mean_up=up, mean_down=down, capacity_up=4)
        for zone, (up, down) in zip(zones, base)
    ]
    return make_correlated_trace(
        "AWS 3",
        specs,
        duration=8 * WEEK,
        region_shock_rate=1.0 / (6 * HOUR),
        region_shock_mean_duration=1.5 * HOUR,
        region_shock_affect_prob=0.95,
        seed=seed,
    )


def gcp1(seed: int = 4, topology: Optional[Topology] = None) -> SpotTrace:
    """GCP 1: 3-day trace, 4 a2-ultragpu-4g, 6 zones across 5 regions.

    A100s are scarce (Fig. 5a: single-zone availability as low as ~30%,
    rising to ~96% over all regions), with short correlated bursts (§2.2:
    34–95% of preemptions followed within 150 s in the same zone).
    """
    topology = topology or default_topology()
    zones = _zone_ids(
        topology,
        [
            "gcp:us-central1",
            "gcp:us-east1",
            "gcp:us-west1",
            "gcp:europe-west4",
            "gcp:asia-east1",
        ],
    )
    assert len(zones) == 6, "GCP 1 expects 6 zones across 5 regions"
    base = [
        (2.0 * HOUR, 3.0 * HOUR),
        (1.5 * HOUR, 3.5 * HOUR),
        (3.0 * HOUR, 2.5 * HOUR),
        (2.5 * HOUR, 2.0 * HOUR),
        (4.0 * HOUR, 2.0 * HOUR),
        (3.5 * HOUR, 2.5 * HOUR),
    ]
    specs = [
        TraceZoneSpec(zone.id, mean_up=up, mean_down=down, capacity_up=4)
        for zone, (up, down) in zip(zones, base)
    ]
    return make_correlated_trace(
        "GCP 1",
        specs,
        duration=3 * DAY,
        step=30.0,
        region_shock_rate=1.0 / (6 * HOUR),
        region_shock_mean_duration=20 * 60.0,
        region_shock_affect_prob=0.9,
        seed=seed,
    )


def cpu_trace(seed: int = 5, topology: Optional[Topology] = None) -> SpotTrace:
    """Spot *CPU* trace (c3-highcpu-176-like) for the Fig. 4 comparison.

    Spot CPUs are far more stable than spot GPUs: §2.3 measures
    95.6–99.9% availability vs 16.7–90.4% for GPUs.
    """
    topology = topology or default_topology()
    zones = topology.zones_in_region("gcp:us-central1")
    specs = [
        TraceZoneSpec(zones[0].id, mean_up=60 * HOUR, mean_down=0.6 * HOUR, capacity_up=8),
        TraceZoneSpec(zones[1].id, mean_up=90 * HOUR, mean_down=0.3 * HOUR, capacity_up=8),
    ]
    return make_correlated_trace(
        "CPU",
        specs,
        duration=2 * WEEK,
        region_shock_rate=0.0,
        seed=seed,
    )
