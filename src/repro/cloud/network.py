"""Inter-region network latency model.

Fig. 6b measures round-trip latencies between GCP regions and the paper's
§3.1 argument rests on one fact: WAN RTTs (tens to ~150 ms) are one to two
orders of magnitude below AI request processing time (seconds to tens of
seconds).  We model the WAN as a static RTT matrix seeded with
representative measured values; lookups between unknown region pairs fall
back to a geography-based estimate (same region ≪ same continent < cross
continent).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["NetworkModel", "default_network"]

# Representative one-way geographic buckets, in seconds (RTT = 2x).
_SAME_REGION_RTT = 0.002
_SAME_CONTINENT_RTT = 0.040
_CROSS_CONTINENT_RTT = 0.100
_CROSS_PACIFIC_RTT = 0.150

_CONTINENTS = {
    "us-east-1": "na",
    "us-east-2": "na",
    "us-west-2": "na",
    "eu-central-1": "eu",
    "us-central1": "na",
    "us-east1": "na",
    "us-west1": "na",
    "europe-west4": "eu",
    "asia-east1": "asia",
    "eastus": "na",
    "westeurope": "eu",
}


class NetworkModel:
    """Static inter-region RTT matrix with geographic fallback."""

    def __init__(self, rtt_overrides: Optional[dict[tuple[str, str], float]] = None) -> None:
        self._overrides: dict[tuple[str, str], float] = {}
        for (a, b), rtt in (rtt_overrides or {}).items():
            if rtt < 0:
                raise ValueError(f"negative RTT for {(a, b)}")
            self._overrides[self._key(a, b)] = rtt

    @staticmethod
    def _key(region_a: str, region_b: str) -> tuple[str, str]:
        return (region_a, region_b) if region_a <= region_b else (region_b, region_a)

    @staticmethod
    def _bare_region(region_id: str) -> str:
        """Strip the cloud prefix from ``cloud:region`` ids."""
        return region_id.split(":")[-1]

    def rtt(self, region_a: str, region_b: str) -> float:
        """Round-trip time in seconds between two regions.

        Accepts either bare region names or ``cloud:region`` ids.
        """
        a = self._bare_region(region_a)
        b = self._bare_region(region_b)
        override = self._overrides.get(self._key(a, b))
        if override is not None:
            return override
        if a == b:
            return _SAME_REGION_RTT
        continent_a = _CONTINENTS.get(a, "na")
        continent_b = _CONTINENTS.get(b, "na")
        if continent_a == continent_b:
            return _SAME_CONTINENT_RTT
        if "asia" in (continent_a, continent_b):
            return _CROSS_PACIFIC_RTT
        return _CROSS_CONTINENT_RTT

    def one_way(self, region_a: str, region_b: str) -> float:
        return self.rtt(region_a, region_b) / 2.0


def default_network() -> NetworkModel:
    """RTT matrix seeded with the Fig. 6b-style measurements.

    US↔EU sits near 100 ms, intra-US pairs in the 20–70 ms band, and
    Asia↔EU/US crossings at 150 ms+.
    """
    return NetworkModel(
        {
            ("us-east-1", "us-west-2"): 0.070,
            ("us-east-1", "us-east-2"): 0.012,
            ("us-east-2", "us-west-2"): 0.050,
            ("us-east-1", "eu-central-1"): 0.090,
            ("us-east-2", "eu-central-1"): 0.100,
            ("us-west-2", "eu-central-1"): 0.140,
            ("us-central1", "us-east1"): 0.032,
            ("us-central1", "us-west1"): 0.035,
            ("us-east1", "us-west1"): 0.065,
            ("us-central1", "europe-west4"): 0.100,
            ("us-east1", "europe-west4"): 0.090,
            ("us-west1", "europe-west4"): 0.135,
            ("us-central1", "asia-east1"): 0.150,
            ("europe-west4", "asia-east1"): 0.250,
        }
    )
