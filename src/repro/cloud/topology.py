"""Cloud → region → zone topology.

A *zone* is the failure domain at which spot capacity fluctuates and
preemptions strike; a *region* groups zones whose preemptions are
correlated (§2.2, Fig. 3); a *cloud* groups regions under one provider.
Zone identifiers are globally unique strings such as
``aws:us-east-1:us-east-1a`` so that policies can treat the whole
multi-cloud search space as a flat set of zones while still reasoning
about region- and cloud-level structure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Zone", "Region", "CloudDesc", "Topology", "default_topology"]


@dataclass(frozen=True)
class Zone:
    """A single availability zone."""

    cloud: str
    region: str
    name: str

    @property
    def id(self) -> str:
        """Globally unique identifier, e.g. ``aws:us-east-1:us-east-1a``."""
        return f"{self.cloud}:{self.region}:{self.name}"

    @property
    def region_id(self) -> str:
        return f"{self.cloud}:{self.region}"

    def __str__(self) -> str:
        return self.id


@dataclass(frozen=True)
class Region:
    """A region: a set of zones under one cloud."""

    cloud: str
    name: str
    zones: tuple[Zone, ...]

    @property
    def id(self) -> str:
        return f"{self.cloud}:{self.name}"


@dataclass(frozen=True)
class CloudDesc:
    """One cloud provider with its regions."""

    name: str
    regions: tuple[Region, ...]


class Topology:
    """The full multi-cloud zone hierarchy with lookup helpers."""

    def __init__(self, clouds: list[CloudDesc]) -> None:
        self._clouds = {cloud.name: cloud for cloud in clouds}
        if len(self._clouds) != len(clouds):
            raise ValueError("duplicate cloud names")
        self._zones: dict[str, Zone] = {}
        self._regions: dict[str, Region] = {}
        for cloud in clouds:
            for region in cloud.regions:
                if region.id in self._regions:
                    raise ValueError(f"duplicate region {region.id!r}")
                self._regions[region.id] = region
                for zone in region.zones:
                    if zone.id in self._zones:
                        raise ValueError(f"duplicate zone {zone.id!r}")
                    self._zones[zone.id] = zone

    @property
    def clouds(self) -> list[CloudDesc]:
        return list(self._clouds.values())

    @property
    def regions(self) -> list[Region]:
        return list(self._regions.values())

    @property
    def zones(self) -> list[Zone]:
        return list(self._zones.values())

    @property
    def zone_ids(self) -> list[str]:
        return list(self._zones.keys())

    def zone(self, zone_id: str) -> Zone:
        zone = self._zones.get(zone_id)
        if zone is None:
            raise KeyError(f"unknown zone {zone_id!r}")
        return zone

    def region(self, region_id: str) -> Region:
        region = self._regions.get(region_id)
        if region is None:
            raise KeyError(f"unknown region {region_id!r}")
        return region

    def zones_in_region(self, region_id: str) -> list[Zone]:
        return list(self.region(region_id).zones)

    def zones_in_cloud(self, cloud: str) -> list[Zone]:
        if cloud not in self._clouds:
            raise KeyError(f"unknown cloud {cloud!r}")
        return [z for z in self._zones.values() if z.cloud == cloud]

    def filter_zones(
        self,
        *,
        clouds: list[str] | None = None,
        regions: list[str] | None = None,
        zone_ids: list[str] | None = None,
    ) -> list[Zone]:
        """Select zones by any combination of cloud/region/zone filters.

        Mirrors the ``any_of`` stanza of the service spec (Listing 1): a
        zone is included if it matches *any* provided filter; with no
        filters at all, every zone is returned.
        """
        if not clouds and not regions and not zone_ids:
            return self.zones
        selected: dict[str, Zone] = {}
        for zone in self._zones.values():
            if clouds and zone.cloud in clouds:
                selected[zone.id] = zone
            if regions and zone.region_id in regions:
                selected[zone.id] = zone
            if zone_ids and zone.id in zone_ids:
                selected[zone.id] = zone
        return list(selected.values())


def _make_region(cloud: str, region: str, zone_suffixes: list[str]) -> Region:
    zones = tuple(Zone(cloud, region, f"{region}{s}") for s in zone_suffixes)
    return Region(cloud, region, zones)


def default_topology() -> Topology:
    """The evaluation topology.

    Covers the zones appearing in the paper's experiments and traces: the
    AWS 3 trace spans 9 zones in 3 US regions (the 8 zones of the Fig. 3c
    correlation matrix plus us-east-1b); eu-central-1 is the third
    SkyServe region in §5.1; GCP 1 spans 6 zones in 5 regions (Fig. 5a).
    """
    aws = CloudDesc(
        "aws",
        (
            _make_region("aws", "us-east-1", ["a", "b", "c", "f"]),
            _make_region("aws", "us-east-2", ["a", "b"]),
            _make_region("aws", "us-west-2", ["a", "b", "c"]),
            _make_region("aws", "eu-central-1", ["a", "b"]),
        ),
    )
    gcp = CloudDesc(
        "gcp",
        (
            _make_region("gcp", "us-central1", ["-a", "-b"]),
            _make_region("gcp", "us-east1", ["-b"]),
            _make_region("gcp", "us-west1", ["-a"]),
            _make_region("gcp", "europe-west4", ["-a"]),
            _make_region("gcp", "asia-east1", ["-a"]),
        ),
    )
    azure = CloudDesc(
        "azure",
        (
            _make_region("azure", "eastus", ["-1", "-2"]),
            _make_region("azure", "westeurope", ["-1", "-2"]),
        ),
    )
    return Topology([aws, gcp, azure])
