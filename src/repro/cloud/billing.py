"""Billing meter: tracks dollar cost accrual across all instances.

The paper reports costs split into spot vs on-demand components
(Figs. 9e-f, 13e-f, 14b), normalised against an all-on-demand deployment.
The meter aggregates per-instance accruals from the shared lifecycle
records, so costs include cold-start time and short provision-then-preempt
cycles (the AWSSpot failure mode of §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import Instance

__all__ = ["BillingMeter", "CostBreakdown"]


@dataclass(frozen=True)
class CostBreakdown:
    """Total cost split by instance market."""

    spot: float
    on_demand: float

    @property
    def total(self) -> float:
        return self.spot + self.on_demand

    def relative_to(self, baseline: float) -> float:
        """Cost as a fraction of a baseline (e.g. all-on-demand) cost."""
        if baseline <= 0:
            raise ValueError(f"non-positive baseline cost {baseline!r}")
        return self.total / baseline


class BillingMeter:
    """Aggregates accrued cost across every instance ever launched."""

    def __init__(self) -> None:
        self._instances: list[Instance] = []

    def track(self, instance: Instance) -> None:
        self._instances.append(instance)

    @property
    def instances(self) -> list[Instance]:
        return list(self._instances)

    def breakdown(self, now: float) -> CostBreakdown:
        spot = 0.0
        on_demand = 0.0
        for instance in self._instances:
            cost = instance.billed_cost(now)
            if instance.spot:
                spot += cost
            else:
                on_demand += cost
        return CostBreakdown(spot=spot, on_demand=on_demand)

    def total(self, now: float) -> float:
        return self.breakdown(now).total

    def snapshot(self, now: float) -> dict[str, float]:
        """Flat accrued-cost snapshot, the shape telemetry sinks want."""
        breakdown = self.breakdown(now)
        return {
            "spot": breakdown.spot,
            "on_demand": breakdown.on_demand,
            "total": breakdown.total,
        }
