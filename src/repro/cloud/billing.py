"""Billing meter: tracks dollar cost accrual across all instances.

The paper reports costs split into spot vs on-demand components
(Figs. 9e-f, 13e-f, 14b), normalised against an all-on-demand deployment.
The meter aggregates per-instance accruals from the shared lifecycle
records, so costs include cold-start time and short provision-then-preempt
cycles (the AWSSpot failure mode of §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloud.instance import Instance

__all__ = ["BillingMeter", "CostBreakdown"]


@dataclass(frozen=True)
class CostBreakdown:
    """Total cost split by instance market."""

    spot: float
    on_demand: float

    @property
    def total(self) -> float:
        return self.spot + self.on_demand

    def relative_to(self, baseline: float) -> float:
        """Cost as a fraction of a baseline (e.g. all-on-demand) cost."""
        if baseline <= 0:
            raise ValueError(f"non-positive baseline cost {baseline!r}")
        return self.total / baseline


class BillingMeter:
    """Aggregates accrued cost across every instance ever launched."""

    def __init__(self) -> None:
        self._instances: list[Instance] = []
        #: Spot price surcharges: (start, end, zones-or-None, multiplier)
        #: windows registered by the chaos injector.  Empty (the normal
        #: case) costs one falsy check per breakdown.
        self._surcharges: list[tuple[float, float, Optional[frozenset[str]], float]] = []

    def track(self, instance: Instance) -> None:
        self._instances.append(instance)

    @property
    def instances(self) -> list[Instance]:
        return list(self._instances)

    def add_surcharge(
        self,
        start: float,
        end: float,
        zones: Optional[frozenset[str]],
        multiplier: float,
    ) -> None:
        """Multiply spot unit prices by ``multiplier`` over ``[start,
        end)`` in the given zones (``None`` = all zones) — the chaos
        :class:`~repro.chaos.spec.PriceSurge` seam.  On-demand prices
        are unaffected."""
        if end <= start:
            raise ValueError(f"empty surcharge window [{start}, {end})")
        if multiplier <= 0:
            raise ValueError(f"non-positive surcharge multiplier {multiplier!r}")
        self._surcharges.append((start, end, zones, multiplier))

    def _surcharge_cost(self, instance: Instance, now: float) -> float:
        """Extra spot cost from surcharge windows overlapping the
        instance's billed interval."""
        if instance.billing_started_at is None:
            return 0.0
        billed_from = instance.billing_started_at
        billed_to = instance.ended_at if instance.ended_at is not None else now
        extra = 0.0
        for start, end, zones, multiplier in self._surcharges:
            if zones is not None and instance.zone_id not in zones:
                continue
            overlap = min(billed_to, end) - max(billed_from, start)
            if overlap > 0:
                extra += instance.hourly_price * (multiplier - 1.0) * overlap / 3600.0
        return extra

    def breakdown(self, now: float) -> CostBreakdown:
        spot = 0.0
        on_demand = 0.0
        surcharges = self._surcharges
        for instance in self._instances:
            cost = instance.billed_cost(now)
            if instance.spot:
                if surcharges:
                    cost += self._surcharge_cost(instance, now)
                spot += cost
            else:
                on_demand += cost
        return CostBreakdown(spot=spot, on_demand=on_demand)

    def total(self, now: float) -> float:
        return self.breakdown(now).total

    def snapshot(self, now: float) -> dict[str, float]:
        """Flat accrued-cost snapshot, the shape telemetry sinks want."""
        breakdown = self.breakdown(now)
        return {
            "spot": breakdown.spot,
            "on_demand": breakdown.on_demand,
            "total": breakdown.total,
        }
