"""Availability vs. search-space analysis (§3.1, Fig. 5).

Fig. 5 shows pooled spot availability climbing as the search space grows
from one zone to one region to many regions: 29.9% → 95.8% for A100
(GCP 1) and 68.2% → 99.2% for V100 (AWS 3).  This module computes that
expansion curve for any trace: for each prefix of the zone/region list,
the fraction of time the pooled capacity could satisfy the desired
instance count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.traces import SpotTrace

__all__ = ["SearchSpaceCurve", "availability_by_search_space"]


@dataclass(frozen=True)
class SearchSpaceCurve:
    """Pooled availability as zones/regions are added."""

    labels: list[str]  # cumulative descriptions, e.g. "1 zone", "2 regions"
    zone_counts: list[int]
    availability: list[float]

    def rows(self) -> list[tuple[str, int, float]]:  # pragma: no cover
        return list(zip(self.labels, self.zone_counts, self.availability))


def availability_by_search_space(
    trace: SpotTrace,
    *,
    threshold: int = 1,
) -> SearchSpaceCurve:
    """Compute Fig. 5's curve for a trace.

    Zones are added region by region (all zones of region 1, then region
    2, ...), matching how a deployment expands its search space.
    ``threshold`` is the number of instances that must be launchable.
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    region_zones: dict[str, list[str]] = {}
    for zone_id in trace.zone_ids:
        region = zone_id.rsplit(":", 1)[0]
        region_zones.setdefault(region, []).append(zone_id)

    labels: list[str] = []
    zone_counts: list[int] = []
    availability: list[float] = []
    cumulative: list[str] = []
    regions_seen = 0
    for region, zones in region_zones.items():
        regions_seen += 1
        for zone_id in zones:
            cumulative.append(zone_id)
            rows = np.stack([trace.zone_row(z) for z in cumulative])
            pooled = float((rows.sum(axis=0) >= threshold).mean())
            labels.append(
                f"{len(cumulative)} zone{'s' if len(cumulative) > 1 else ''} "
                f"/ {regions_seen} region{'s' if regions_seen > 1 else ''}"
            )
            zone_counts.append(len(cumulative))
            availability.append(pooled)
    return SearchSpaceCurve(
        labels=labels, zone_counts=zone_counts, availability=availability
    )
