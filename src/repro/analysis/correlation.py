"""Preemption correlation analysis (§2.2, Fig. 3).

The paper's Fig. 3c computes, from a 2-month 8-zone trace, the Pearson
correlation of per-interval preemption indicators between every pair of
zones, finding correlations ≥ 0.3 within regions and near zero across
regions.  This module reproduces that analysis on any
:class:`~repro.cloud.traces.SpotTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.cloud.traces import SpotTrace

__all__ = [
    "CorrelationMatrix",
    "follow_on_preemption_probability",
    "preemption_correlation",
]


def follow_on_preemption_probability(
    trace: SpotTrace,
    *,
    window: float = 300.0,
    scope: str = "region",
    instance_level: bool = False,
) -> dict[str, float]:
    """§2.2's follow-on statistic, per zone.

    The paper measures: "from the first spot instance preemption,
    83–97% of the time a preemption occurs in a zone, at least one more
    will follow within 5 minutes" (AWS, same region) and "34–95% of
    time other spot instances of the same zone are preempted within 150
    seconds" (GCP).

    A *preemption episode* is a trace step in which a zone's capacity
    drops (regardless of how many instances it takes).  For each episode
    in a zone, this computes the probability that another episode begins
    within ``window`` seconds — in the same zone (``scope="zone"``),
    in another zone of the same region (``scope="region"``), or anywhere
    (``scope="all"``).  Same-step episodes in *other* zones count as
    follow-ons (simultaneous correlated preemptions); the triggering
    episode itself does not.

    ``instance_level=True`` matches the paper's per-instance counting:
    a capacity drop of m instances is m preemption events, of which the
    first m−1 are trivially followed (their sibling preemptions land in
    the window).  The paper's 83–97% (AWS) and 34–95% (GCP) bands are
    instance-level numbers; episode-level probabilities are much lower
    and better suited to step-function traces.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if scope not in ("zone", "region", "all"):
        raise ValueError(f"unknown scope {scope!r}")
    window_steps = max(int(round(window / trace.step)), 1)

    episodes = {z: trace.preemption_indicator(z) for z in trace.zone_ids}

    out: dict[str, float] = {}
    for zone_id in trace.zone_ids:
        if scope == "zone":
            peers = []  # only later episodes in the zone itself count
        elif scope == "region":
            region = zone_id.rsplit(":", 1)[0]
            peers = [
                z
                for z in trace.zone_ids
                if z != zone_id and z.rsplit(":", 1)[0] == region
            ]
        else:
            peers = [z for z in trace.zone_ids if z != zone_id]
        events = np.where(episodes[zone_id])[0]
        if events.size == 0:
            out[zone_id] = float("nan")
            continue
        row = trace.zone_row(zone_id)
        followed = 0.0
        total = 0.0
        for k in events:
            end = min(k + window_steps + 1, trace.n_steps)
            # Later episodes in the zone itself...
            hit = bool(episodes[zone_id][k + 1 : end].any())
            # ...or same-step/later episodes in peer zones.
            if not hit:
                hit = any(episodes[p][k:end].any() for p in peers)
            if instance_level:
                magnitude = int(row[k - 1] - row[k]) if k > 0 else 1
                magnitude = max(magnitude, 1)
                total += magnitude
                # The first m-1 instance preemptions are followed by
                # their siblings; the last depends on the episode check.
                followed += (magnitude - 1) + (1.0 if hit else 0.0)
            else:
                total += 1
                if hit:
                    followed += 1
        out[zone_id] = followed / total
    return out


@dataclass(frozen=True)
class CorrelationMatrix:
    """Pairwise Pearson correlation of preemption indicators."""

    zone_ids: list[str]
    correlation: np.ndarray  # (Z, Z) Pearson r
    p_values: np.ndarray  # (Z, Z)

    def pair(self, zone_a: str, zone_b: str) -> tuple[float, float]:
        """(r, p) for one zone pair."""
        i = self.zone_ids.index(zone_a)
        j = self.zone_ids.index(zone_b)
        return float(self.correlation[i, j]), float(self.p_values[i, j])

    def _pairs(self, same_region: bool) -> list[float]:
        values = []
        for i, zone_a in enumerate(self.zone_ids):
            for j in range(i + 1, len(self.zone_ids)):
                zone_b = self.zone_ids[j]
                region_a = zone_a.rsplit(":", 1)[0]
                region_b = zone_b.rsplit(":", 1)[0]
                if (region_a == region_b) == same_region:
                    values.append(float(self.correlation[i, j]))
        return values

    @property
    def intra_region_pairs(self) -> list[float]:
        """Correlations of zone pairs within the same region."""
        return self._pairs(same_region=True)

    @property
    def inter_region_pairs(self) -> list[float]:
        """Correlations of zone pairs across different regions."""
        return self._pairs(same_region=False)

    def mean_intra_region(self) -> float:
        pairs = self.intra_region_pairs
        return float(np.mean(pairs)) if pairs else float("nan")

    def mean_inter_region(self) -> float:
        pairs = self.inter_region_pairs
        return float(np.mean(pairs)) if pairs else float("nan")


def preemption_correlation(
    trace: SpotTrace,
    *,
    window_steps: int = 5,
) -> CorrelationMatrix:
    """Fig. 3c's matrix: correlate per-window preemption indicators.

    Preemption events (capacity drops) are aggregated into windows of
    ``window_steps`` trace steps (simultaneity at minute granularity is
    too strict; the paper observes follow-on preemptions within ~5
    minutes) and correlated pairwise.
    """
    if window_steps < 1:
        raise ValueError("window_steps must be >= 1")
    indicators = []
    for zone_id in trace.zone_ids:
        raw = trace.preemption_indicator(zone_id).astype(float)
        n_windows = len(raw) // window_steps
        clipped = raw[: n_windows * window_steps]
        windowed = clipped.reshape(n_windows, window_steps).max(axis=1)
        indicators.append(windowed)
    data = np.stack(indicators)
    n_zones = data.shape[0]
    correlation = np.eye(n_zones)
    p_values = np.zeros((n_zones, n_zones))
    for i in range(n_zones):
        for j in range(i + 1, n_zones):
            if data[i].std() == 0 or data[j].std() == 0:
                r, p = 0.0, 1.0
            else:
                r, p = stats.pearsonr(data[i], data[j])
            correlation[i, j] = correlation[j, i] = r
            p_values[i, j] = p_values[j, i] = p
    return CorrelationMatrix(
        zone_ids=list(trace.zone_ids), correlation=correlation, p_values=p_values
    )
