"""Trace analysis reproducing §2's measurement figures."""

from repro.analysis.availability import SearchSpaceCurve, availability_by_search_space
from repro.analysis.correlation import (
    CorrelationMatrix,
    follow_on_preemption_probability,
    preemption_correlation,
)
from repro.analysis.preemption_model import PreemptionModel, simulate_preemptions

__all__ = [
    "CorrelationMatrix",
    "PreemptionModel",
    "SearchSpaceCurve",
    "availability_by_search_space",
    "follow_on_preemption_probability",
    "preemption_correlation",
    "simulate_preemptions",
]
