"""The §3.1 analytical preemption model.

The paper motivates Dynamic Placement with a small calculation.  Assume
N zones whose preemptions are Poisson with per-zone rates λ_i (so a
spot instance's lifetime in zone i is Exp(1/λ_i)), n replicas, and an
observation window T much longer than the cold start:

* **Static Spread** (ASG/MArk): n/N replicas pinned per zone.
  ``E[K] = n · T · mean(λ_i)`` — dominated by the hottest zones.
* **Round Robin** (Ray Serve/GKE): each replica cycles through zones,
  so its long-run lifetime is the average of the zone lifetimes and
  ``E[K] = n · T · N / Σ(1/λ_i)`` — the *harmonic* mean rate, which is
  never larger than the arithmetic mean (AM–HM inequality), hence
  fewer preemptions.
* **Oracle single zone**: if the coldest zone were known, placing
  everything there gives ``E[K] = n · T · min(λ_i)`` — the limit that
  rate tracking (Dynamic Placement) approaches.

This module computes all three closed forms and provides a Monte-Carlo
simulator of the renewal processes to validate them — the §3.1 claims
become testable statements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PreemptionModel",
    "simulate_preemptions",
]


@dataclass(frozen=True)
class PreemptionModel:
    """Closed-form expected preemption counts for the §3.1 policies."""

    rates: tuple[float, ...]  # per-zone Poisson rates λ_i (1/seconds)
    n_replicas: int
    horizon: float  # observation window T, seconds

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("need at least one zone rate")
        if any(rate <= 0 for rate in self.rates):
            raise ValueError("zone rates must be positive")
        if self.n_replicas < 1:
            raise ValueError("need at least one replica")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    @property
    def arithmetic_mean_rate(self) -> float:
        return float(np.mean(self.rates))

    @property
    def harmonic_mean_rate(self) -> float:
        return float(len(self.rates) / np.sum(1.0 / np.asarray(self.rates)))

    def expected_static_spread(self) -> float:
        """E[K] for a static even spread: n·T·mean(λ_i)."""
        return self.n_replicas * self.horizon * self.arithmetic_mean_rate

    def expected_round_robin(self) -> float:
        """E[K] for round-robin relaunching: n·T·harmonic_mean(λ_i)."""
        return self.n_replicas * self.horizon * self.harmonic_mean_rate

    def expected_best_zone(self) -> float:
        """E[K] with oracle knowledge of the coldest zone: n·T·min(λ_i).

        Dynamic Placement's rate tracking approaches this as it learns
        which zones preempt."""
        return self.n_replicas * self.horizon * float(min(self.rates))

    def round_robin_advantage(self) -> float:
        """E[K]_static / E[K]_rr = AM/HM ≥ 1, with equality iff all
        zones preempt at the same rate."""
        return self.arithmetic_mean_rate / self.harmonic_mean_rate


def simulate_preemptions(
    model: PreemptionModel,
    policy: str,
    *,
    rng: np.random.Generator,
) -> int:
    """Monte-Carlo count of preemptions over the horizon.

    Each replica runs a renewal process: it lives Exp(1/λ_zone) in its
    current zone, is preempted, and relaunches per the policy
    (``"static"`` — same zone forever; ``"round_robin"`` — next zone;
    ``"best"`` — always the coldest zone).  Cold-start delay is assumed
    negligible relative to lifetimes, as in the paper's derivation.
    """
    rates = np.asarray(model.rates)
    n_zones = len(rates)
    if policy not in ("static", "round_robin", "best"):
        raise ValueError(f"unknown policy {policy!r}")
    total = 0
    for replica in range(model.n_replicas):
        if policy == "static":
            zone = replica % n_zones
        elif policy == "best":
            zone = int(np.argmin(rates))
        else:
            zone = replica % n_zones
        t = 0.0
        while True:
            t += rng.exponential(1.0 / rates[zone])
            if t >= model.horizon:
                break
            total += 1
            if policy == "round_robin":
                zone = (zone + 1) % n_zones
    return total
