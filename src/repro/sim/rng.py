"""Named, hierarchical random-number streams.

Every stochastic component of the simulator (per-zone preemption processes,
workload interarrivals, inference service times, ...) draws from its own
named stream derived from a single experiment seed.  This has two
properties the paper's methodology needs:

* **Reproducibility** — the same seed always produces the same experiment,
  so benchmark shapes are stable run-to-run.
* **Isolation** — adding draws to one component (say, the autoscaler) does
  not perturb the sequence seen by another (say, zone ``us-east-1a``'s
  preemption process), so policy comparisons run against *identical*
  preemption/workload realisations, mirroring the paper's concurrent
  deployments of all baselines.

Streams are derived with ``numpy.random.SeedSequence.spawn``-style keying:
the stream name is hashed into entropy that is mixed with the root seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so that similar names ("zone-1", "zone-2") yield
    uncorrelated streams, unlike additive seeding.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache for named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The experiment-level seed all streams derive from."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so draws are consumed from a single sequence.
        """
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self._root_seed, name))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> RngRegistry:
        """Create a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self._root_seed, f"fork:{name}"))
