"""Metric recording primitives shared by the serving and replay harnesses.

Three recorder types cover everything the paper reports:

* :class:`Counter` — monotonically increasing totals (requests served,
  failures, preemptions).
* :class:`TimeSeries` — irregular ``(time, value)`` samples (ready-replica
  counts for Fig. 10, provisioning counts for Fig. 12), with step-function
  semantics and time-weighted aggregation for availability and cost.
* :class:`LatencyRecorder` — per-request latencies with percentile
  summaries (P50/P90/P99 for Figs. 9, 13, 15).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "BoxPlotStats",
    "Counter",
    "LatencyRecorder",
    "LatencySummary",
    "TimeSeries",
    "percentile",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile; ``nan`` on empty input.

    ``q`` is in [0, 100].  A thin wrapper over ``numpy.percentile``
    (including the array conversion) that adds the two behaviours the
    callers rely on: ``nan`` instead of an exception on empty input, and
    an explicit range check on ``q``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q!r} outside [0, 100]")
    if len(values) == 0:
        return math.nan
    return float(np.percentile(np.asarray(values, dtype=float), q))


class Counter:
    """A named monotonic counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self._value += amount


class TimeSeries:
    """Step-function time series of ``(time, value)`` samples.

    Samples must arrive in non-decreasing time order (the simulator
    guarantees this).  A sample at the same timestamp as the previous one
    overwrites it, which is the natural semantics for "state at time t"
    recorded from several callbacks in the same event.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> list[float]:
        return list(self._times)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time series {self.name}: sample at t={time} after t={self._times[-1]}"
            )
        if self._times and time == self._times[-1]:
            self._values[-1] = value
            return
        self._times.append(time)
        self._values.append(value)

    def value_at(self, time: float) -> float:
        """Step-function lookup; ``nan`` before the first sample."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return math.nan
        return self._values[index]

    def time_weighted_mean(self, start: float, end: float) -> float:
        """Average value over ``[start, end]`` weighting by duration.

        A zero-width window (``end == start`` — e.g. a series with a
        single sample queried at its own timestamp) degenerates to the
        step-function value at ``start`` instead of dividing by zero.
        """
        if end < start:
            raise ValueError(f"inverted window [{start}, {end}]")
        if end == start:
            return self.value_at(start)
        total = self.integrate(start, end)
        return total / (end - start)

    def integrate(self, start: float, end: float) -> float:
        """Integral of the step function over ``[start, end]``.

        Time before the first sample contributes zero.
        """
        if end < start:
            raise ValueError(f"inverted window [{start}, {end}]")
        if not self._times or end <= self._times[0]:
            return 0.0
        total = 0.0
        # Walk segments [t_i, t_{i+1}) clipped to the window.
        start_index = max(bisect.bisect_right(self._times, start) - 1, 0)
        for i in range(start_index, len(self._times)):
            seg_start = max(self._times[i], start)
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                total += self._values[i] * (seg_end - seg_start)
            if seg_end >= end:
                break
        return total

    def fraction_at_least(self, threshold: float, start: float, end: float) -> float:
        """Fraction of ``[start, end]`` during which value >= ``threshold``.

        This is exactly the paper's *availability* metric: the percentage
        of time at least ``N_Tar`` replicas are ready.  Time before the
        first sample counts as *not* meeting the threshold.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end}]")
        if not self._times:
            return 0.0
        satisfied = 0.0
        start_index = max(bisect.bisect_right(self._times, start) - 1, 0)
        for i in range(start_index, len(self._times)):
            seg_start = max(self._times[i], start)
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start and self._values[i] >= threshold:
                satisfied += seg_end - seg_start
            if seg_end >= end:
                break
        # Clamp away float round-off so callers can rely on [0, 1].
        return min(max(satisfied / (end - start), 0.0), 1.0)


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a latency distribution, in seconds."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float

    def __bool__(self) -> bool:
        """Falsy when empty, so ``if summary:`` keeps reading naturally
        now that empty recorders return NaN summaries instead of None."""
        return self.count > 0

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"n={self.count} mean={self.mean:.2f}s "
            f"p50={self.p50:.2f}s p90={self.p90:.2f}s p99={self.p99:.2f}s"
        )


@dataclass(frozen=True)
class BoxPlotStats:
    """The paper's Fig. 9 box-plot elements: median line, 25th/75th
    percentile box, 10th/90th percentile whiskers, mean marker."""

    count: int
    p10: float
    p25: float
    p50: float
    p75: float
    p90: float
    mean: float

    def __bool__(self) -> bool:
        return self.count > 0

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"whiskers [{self.p10:.2f}, {self.p90:.2f}] "
            f"box [{self.p25:.2f}, {self.p75:.2f}] "
            f"median {self.p50:.2f} mean {self.mean:.2f}"
        )


class LatencyRecorder:
    """Collects per-request latencies and summarises them."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: list[float] = []

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self._samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        for value in latencies:
            self.record(value)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def summary(self) -> LatencySummary:
        """Percentile summary.  An empty recorder yields a NaN-safe
        summary with ``count == 0`` that is *falsy*, so both
        ``summary.p50`` (NaN, no crash) and ``if summary:`` work."""
        if not self._samples:
            nan = math.nan
            return LatencySummary(count=0, mean=nan, p50=nan, p90=nan, p99=nan)
        data = np.asarray(self._samples, dtype=float)
        return LatencySummary(
            count=int(data.size),
            mean=float(data.mean()),
            p50=float(np.percentile(data, 50)),
            p90=float(np.percentile(data, 90)),
            p99=float(np.percentile(data, 99)),
        )

    def boxplot(self) -> BoxPlotStats:
        """Fig. 9's box-plot elements; NaN-safe and falsy when empty."""
        if not self._samples:
            nan = math.nan
            return BoxPlotStats(
                count=0, p10=nan, p25=nan, p50=nan, p75=nan, p90=nan, mean=nan
            )
        data = np.asarray(self._samples, dtype=float)
        p10, p25, p50, p75, p90 = (
            float(q) for q in np.percentile(data, (10, 25, 50, 75, 90))
        )
        return BoxPlotStats(
            count=int(data.size),
            p10=p10,
            p25=p25,
            p50=p50,
            p75=p75,
            p90=p90,
            mean=float(data.mean()),
        )
