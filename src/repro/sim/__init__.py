"""Discrete-event simulation substrate.

Provides the event engine, deterministic named RNG streams, and metric
recorders used by every other subsystem of the reproduction.
"""

from repro.sim.engine import EventHandle, SimulationEngine, SimulationError
from repro.sim.metrics import (
    BoxPlotStats,
    Counter,
    LatencyRecorder,
    LatencySummary,
    TimeSeries,
    percentile,
)
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "BoxPlotStats",
    "Counter",
    "EventHandle",
    "LatencyRecorder",
    "LatencySummary",
    "RngRegistry",
    "SimulationEngine",
    "SimulationError",
    "TimeSeries",
    "derive_seed",
    "percentile",
]
