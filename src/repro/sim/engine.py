"""Discrete-event simulation engine.

The engine is a priority queue of timestamped callbacks with a simulated
clock measured in float seconds.  Every component of the reproduced system
(cloud providers, replicas, load balancers, autoscalers, clients) schedules
work on a shared :class:`SimulationEngine` instead of touching wall-clock
time, which makes multi-hour paper experiments run in milliseconds and makes
every run exactly reproducible.

Two scheduling styles are supported:

* one-shot callbacks via :meth:`SimulationEngine.call_at` /
  :meth:`SimulationEngine.call_after`, and
* recurring timers via :meth:`SimulationEngine.call_every`, used for
  control loops such as the service controller's reconciliation tick.

Events scheduled for the same timestamp fire in scheduling order (FIFO),
which keeps control-loop interleavings deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.events import EventBus

__all__ = ["EventHandle", "SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid engine usage (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry.

    Ordered by ``(time, seq)`` so that simultaneous events preserve
    scheduling order.  The callback itself is excluded from ordering.

    The entry participates in the engine's live pending-event count:
    cancellation decrements the counter exactly once (and only while the
    entry is still queued), so :attr:`SimulationEngine.pending_events`
    never has to walk the heap.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set once the entry has left the heap (fired or skipped).
    popped: bool = field(default=False, compare=False)
    engine: Optional[SimulationEngine] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if not self.popped and self.engine is not None:
                self.engine._pending -= 1


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is lazy: the heap entry stays in the queue but is skipped
    when popped.
    """

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event fires (or would have fired)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancel()


class SimulationEngine:
    """A deterministic discrete-event loop with a float-seconds clock."""

    def __init__(
        self,
        start_time: float = 0.0,
        *,
        telemetry: Optional[EventBus] = None,
    ) -> None:
        self._now = float(start_time)
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._pending = 0
        if telemetry is None:
            # Local import: telemetry depends on sim.metrics, so a
            # module-level import would be circular.
            from repro.telemetry.events import NULL_BUS

            telemetry = NULL_BUS
        #: Telemetry bus shared by every component scheduling on this
        #: engine.  Disabled (the shared null bus) unless a configured
        #: :class:`~repro.telemetry.events.EventBus` is passed in —
        #: publishers guard with ``if engine.telemetry.enabled``.
        self.telemetry = telemetry

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queued, not-cancelled events.

        Maintained as a live counter (incremented on schedule,
        decremented on cancel or execution) so controller-loop
        assertions cost O(1) instead of walking the heap.
        """
        return self._pending

    def call_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.3f}, now is t={self._now:.3f}"
            )
        event = _ScheduledEvent(
            time=float(time), seq=next(self._seq), callback=callback, engine=self
        )
        heapq.heappush(self._queue, event)
        self._pending += 1
        return EventHandle(event)

    def call_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback)

    def call_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start_delay: Optional[float] = None,
    ) -> EventHandle:
        """Schedule ``callback`` every ``interval`` seconds.

        The returned handle cancels the *whole* recurring timer.  The first
        invocation happens after ``start_delay`` (default: ``interval``).
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        first_delay = interval if start_delay is None else start_delay
        # The recurring timer is implemented by re-scheduling from inside
        # the tick.  A shared cell lets the caller's handle cancel the
        # currently queued tick, whichever one that is.
        cell: dict[str, _ScheduledEvent] = {}

        def tick() -> None:
            callback()
            if not cell["event"].cancelled:
                cell["event"] = self.call_after(interval, tick)._event

        cell["event"] = self.call_after(first_delay, tick)._event

        class _RecurringHandle(EventHandle):
            def __init__(self) -> None:  # noqa: D401 - thin shim
                pass

            @property
            def time(self) -> float:
                return cell["event"].time

            @property
            def cancelled(self) -> bool:
                return cell["event"].cancelled

            def cancel(self) -> None:
                cell["event"].cancel()

        return _RecurringHandle()

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``False`` when the queue is empty.  Cancelled events are
        skipped without advancing the clock.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                continue  # counter already adjusted at cancel time
            self._pending -= 1
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events until the clock would pass ``end_time``.

        The clock is left exactly at ``end_time`` so that metrics windows
        line up across runs; events scheduled at exactly ``end_time`` are
        executed.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.3f} is before now {self._now:.3f}"
            )
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if event.time > end_time:
                    break
                heapq.heappop(self._queue)
                event.popped = True
                if event.cancelled:
                    continue  # counter already adjusted at cancel time
                self._pending -= 1
                self._now = event.time
                self._events_processed += 1
                event.callback()
        finally:
            self._running = False
        self._now = end_time

    def run(self) -> None:
        """Run until the event queue drains completely."""
        while self.step():
            pass
