"""Request and workload containers.

A :class:`Request` is one prompt to the service: its arrival time and its
token counts, which drive the simulated inference time (longer outputs
take longer, mirroring the Arena trace's "varying output lengths").
A :class:`Workload` is an arrival-ordered list of requests with the
summary statistics the paper plots in Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Request", "Workload"]


@dataclass(frozen=True)
class Request:
    """A single inference request."""

    request_id: int
    arrival_time: float
    input_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"request {self.request_id}: negative arrival time")
        if self.input_tokens < 1 or self.output_tokens < 1:
            raise ValueError(f"request {self.request_id}: non-positive token counts")


class Workload:
    """An arrival-ordered request stream."""

    def __init__(self, name: str, requests: Sequence[Request]) -> None:
        self.name = name
        self.requests = list(requests)
        for earlier, later in zip(self.requests, self.requests[1:]):
            if later.arrival_time < earlier.arrival_time:
                raise ValueError(f"workload {name!r}: arrivals out of order")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def duration(self) -> float:
        """Time of the last arrival (0 for an empty workload)."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_time

    @property
    def arrival_times(self) -> np.ndarray:
        return np.asarray([r.arrival_time for r in self.requests], dtype=float)

    def interarrival_times(self) -> np.ndarray:
        """Gaps between consecutive arrivals (Fig. 11b distribution)."""
        if len(self.requests) < 2:
            return np.empty(0)
        return np.diff(self.arrival_times)

    def mean_rate(self) -> float:
        """Average requests per second over the workload span."""
        if len(self.requests) < 2 or self.duration == 0:
            return 0.0
        return len(self.requests) / self.duration

    def rate_series(self, bin_seconds: float = 60.0) -> tuple[np.ndarray, np.ndarray]:
        """Requests-per-second in fixed bins (Fig. 11a arrival pattern).

        Returns ``(bin_start_times, rates)``.
        """
        if bin_seconds <= 0:
            raise ValueError(f"non-positive bin size {bin_seconds!r}")
        if not self.requests:
            return np.empty(0), np.empty(0)
        n_bins = int(self.duration // bin_seconds) + 1
        counts = np.zeros(n_bins)
        for request in self.requests:
            counts[int(request.arrival_time // bin_seconds)] += 1
        times = np.arange(n_bins) * bin_seconds
        return times, counts / bin_seconds

    def burstiness(self) -> float:
        """Coefficient of variation of interarrival times.

        1.0 for Poisson; substantially above 1 for bursty traces like
        Arena.
        """
        gaps = self.interarrival_times()
        if gaps.size == 0 or gaps.mean() == 0:
            return 0.0
        return float(gaps.std() / gaps.mean())

    def slice(self, start: float, end: float) -> Workload:
        """Sub-workload with arrivals in ``[start, end)``, re-timed to 0."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        subset = [
            Request(
                request_id=r.request_id,
                arrival_time=r.arrival_time - start,
                input_tokens=r.input_tokens,
                output_tokens=r.output_tokens,
            )
            for r in self.requests
            if start <= r.arrival_time < end
        ]
        return Workload(f"{self.name}[{start:.0f}:{end:.0f}]", subset)
