"""Workload generators: Poisson, Arena-like, and MAF-like (§5.2)."""

from repro.workloads.generators import (
    arena_workload,
    maf_workload,
    poisson_workload,
    rate_modulated_arrivals,
)
from repro.workloads.io import load_requests_csv, save_requests_csv
from repro.workloads.request import Request, Workload

__all__ = [
    "Request",
    "Workload",
    "arena_workload",
    "load_requests_csv",
    "maf_workload",
    "poisson_workload",
    "rate_modulated_arrivals",
    "save_requests_csv",
]
