"""Workload generators for the three evaluation workloads (§5.2).

* :func:`poisson_workload` — homogeneous Poisson arrivals (the paper uses
  λ = 0.15 req/s).
* :func:`arena_workload` — a synthetic stand-in for the Chatbot Arena
  trace: diurnal base load, superimposed burst episodes (the paper cites
  up-to-50× traffic spikes), heavy-tailed interarrivals (Fig. 11b), and
  widely varying output lengths (so per-request compute time varies).
* :func:`maf_workload` — a synthetic stand-in for the Microsoft Azure
  Functions trace: strong diurnal pattern with sharp invocation spikes.

All generators share a token-length model: chat-style prompts are short
to medium (lognormal input), outputs range from one-liners to long
generations (lognormal output), matching the Fig. 6a observation that a
20-in/44-out-token request already takes seconds of GPU time.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.sim.rng import RngRegistry
from repro.workloads.request import Request, Workload

__all__ = [
    "arena_workload",
    "maf_workload",
    "poisson_workload",
    "rate_modulated_arrivals",
]


def _sample_tokens(
    rng: np.random.Generator,
    *,
    input_median: float = 60.0,
    input_sigma: float = 0.9,
    output_median: float = 150.0,
    output_sigma: float = 1.0,
    max_tokens: int = 4096,
) -> tuple[int, int]:
    """Draw (input, output) token counts from lognormal distributions."""
    input_tokens = int(rng.lognormal(math.log(input_median), input_sigma)) + 1
    output_tokens = int(rng.lognormal(math.log(output_median), output_sigma)) + 1
    return min(input_tokens, max_tokens), min(output_tokens, max_tokens)


def rate_modulated_arrivals(
    rate_fn: Callable[[float], float],
    duration: float,
    rng: np.random.Generator,
    *,
    max_rate: float,
) -> list[float]:
    """Sample a non-homogeneous Poisson process by thinning.

    ``rate_fn(t)`` gives the instantaneous rate; ``max_rate`` must bound
    it from above over ``[0, duration]``.
    """
    if max_rate <= 0:
        raise ValueError(f"non-positive max_rate {max_rate!r}")
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / max_rate)
        if t >= duration:
            break
        rate = rate_fn(t)
        if rate > max_rate * (1 + 1e-9):
            raise ValueError(f"rate_fn({t:.1f}) = {rate} exceeds max_rate {max_rate}")
        if rng.random() < rate / max_rate:
            arrivals.append(t)
    return arrivals


def _build_workload(
    name: str,
    arrivals: list[float],
    rng: np.random.Generator,
    token_kwargs: Optional[dict] = None,
) -> Workload:
    requests = []
    for i, arrival in enumerate(arrivals):
        input_tokens, output_tokens = _sample_tokens(rng, **(token_kwargs or {}))
        requests.append(
            Request(
                request_id=i,
                arrival_time=arrival,
                input_tokens=input_tokens,
                output_tokens=output_tokens,
            )
        )
    return Workload(name, requests)


def poisson_workload(
    duration: float,
    rate: float = 0.15,
    *,
    seed: int = 0,
) -> Workload:
    """Homogeneous Poisson arrivals at ``rate`` requests/second (§5.2)."""
    if rate <= 0:
        raise ValueError(f"non-positive rate {rate!r}")
    registry = RngRegistry(seed)
    rng = registry.stream("poisson")
    arrivals: list[float] = []
    t = rng.exponential(1.0 / rate)
    while t < duration:
        arrivals.append(t)
        t += rng.exponential(1.0 / rate)
    return _build_workload("Poisson", arrivals, registry.stream("poisson-tokens"))


def arena_workload(
    duration: float,
    *,
    base_rate: float = 0.15,
    diurnal_amplitude: float = 0.6,
    burst_rate_per_hour: float = 0.5,
    burst_multiplier: float = 8.0,
    burst_mean_duration: float = 300.0,
    output_median: float = 180.0,
    output_sigma: float = 1.1,
    max_output_tokens: int = 4096,
    seed: int = 0,
) -> Workload:
    """Synthetic Chatbot-Arena-like workload (Fig. 11).

    The rate is a diurnal sinusoid around ``base_rate`` with randomly
    arriving burst episodes that multiply the instantaneous rate by
    ``burst_multiplier`` for ``Exp(burst_mean_duration)`` seconds.  The
    resulting interarrival CV is well above 1 (bursty), unlike Poisson.
    """
    registry = RngRegistry(seed)
    burst_rng = registry.stream("arena-bursts")
    bursts: list[tuple[float, float]] = []
    t = 0.0
    while burst_rate_per_hour > 0:
        t += burst_rng.exponential(3600.0 / burst_rate_per_hour)
        if t >= duration:
            break
        bursts.append((t, t + burst_rng.exponential(burst_mean_duration)))

    def rate_fn(time: float) -> float:
        diurnal = 1.0 + diurnal_amplitude * math.sin(2 * math.pi * time / 86400.0)
        rate = base_rate * diurnal
        for start, end in bursts:
            if start <= time < end:
                rate *= burst_multiplier
                break
        return rate

    max_rate = base_rate * (1 + diurnal_amplitude) * burst_multiplier
    arrivals = rate_modulated_arrivals(
        rate_fn, duration, registry.stream("arena-arrivals"), max_rate=max_rate
    )
    # Arena conversations have long, highly variable generations.
    return _build_workload(
        "Arena",
        arrivals,
        registry.stream("arena-tokens"),
        token_kwargs={
            "output_median": output_median,
            "output_sigma": output_sigma,
            "max_tokens": max_output_tokens,
        },
    )


def maf_workload(
    duration: float,
    *,
    base_rate: float = 0.12,
    diurnal_amplitude: float = 0.8,
    spike_rate_per_day: float = 6.0,
    spike_multiplier: float = 15.0,
    spike_mean_duration: float = 120.0,
    seed: int = 0,
) -> Workload:
    """Synthetic Microsoft-Azure-Functions-like workload (§5.2).

    Serverless invocations show a stronger day/night swing than chat
    traffic and short, very sharp spikes; requests are shorter (function
    -style payloads) than Arena conversations.
    """
    registry = RngRegistry(seed)
    spike_rng = registry.stream("maf-spikes")
    spikes: list[tuple[float, float]] = []
    t = 0.0
    while spike_rate_per_day > 0:
        t += spike_rng.exponential(86400.0 / spike_rate_per_day)
        if t >= duration:
            break
        spikes.append((t, t + spike_rng.exponential(spike_mean_duration)))

    def rate_fn(time: float) -> float:
        diurnal = 1.0 + diurnal_amplitude * math.sin(2 * math.pi * time / 86400.0 - 0.5)
        rate = base_rate * max(diurnal, 0.05)
        for start, end in spikes:
            if start <= time < end:
                rate *= spike_multiplier
                break
        return rate

    max_rate = base_rate * (1 + diurnal_amplitude) * spike_multiplier
    arrivals = rate_modulated_arrivals(
        rate_fn, duration, registry.stream("maf-arrivals"), max_rate=max_rate
    )
    return _build_workload(
        "MAF",
        arrivals,
        registry.stream("maf-tokens"),
        token_kwargs={"input_median": 40.0, "output_median": 80.0, "output_sigma": 0.8},
    )
