"""Workload interop: load/save request traces.

The paper replays the Chatbot Arena conversation dataset ("inter-arrival
time and query prompts from Arena").  A replayable request trace is just
``arrival_time, input_tokens, output_tokens`` rows; these helpers
round-trip that through CSV so real datasets (Arena, MAF, production
logs) can drive every experiment in place of the synthetic generators.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.workloads.request import Request, Workload

__all__ = ["load_requests_csv", "save_requests_csv"]

_COLUMNS = ("arrival_time", "input_tokens", "output_tokens")


def save_requests_csv(workload: Workload, path: str | Path) -> None:
    """Write a workload as ``arrival_time,input_tokens,output_tokens``."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for request in workload:
            writer.writerow(
                [request.arrival_time, request.input_tokens, request.output_tokens]
            )


def load_requests_csv(path: str | Path, *, name: str | None = None) -> Workload:
    """Load a request trace written by :func:`save_requests_csv` or an
    external collector.  Rows may be unsorted; they are ordered by
    arrival time and assigned sequential ids."""
    rows: list[tuple[float, int, int]] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not set(_COLUMNS).issubset(reader.fieldnames):
            raise ValueError(f"CSV must have columns {list(_COLUMNS)}")
        for line in reader:
            rows.append(
                (
                    float(line["arrival_time"]),
                    int(line["input_tokens"]),
                    int(line["output_tokens"]),
                )
            )
    rows.sort(key=lambda r: r[0])
    requests = [
        Request(i, arrival, input_tokens, output_tokens)
        for i, (arrival, input_tokens, output_tokens) in enumerate(rows)
    ]
    return Workload(name or Path(path).stem, requests)
