"""Simulated inference engine.

Stands in for vLLM / TGI / Triton / SpotServe endpoints.  The model we
need is the one the paper's latency argument rests on (Fig. 6a): request
processing time is seconds to tens of seconds, split into a fixed
overhead, a prefill phase proportional to input tokens, and a decode
phase proportional to output tokens.  The engine admits up to
``max_concurrency`` requests at once (continuous batching slots); excess
requests wait in a FIFO queue, which is where overload shows up as
queueing delay and, eventually, client timeouts.

Profiles are provided for the three model/hardware pairs the evaluation
uses: Llama-2-70B on 8×A10G (vLLM), OPT-6.7B on 4×T4 (SpotServe), and
Vicuna-13B (the Fig. 6a breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim.engine import SimulationEngine
from repro.telemetry.spans import RequestSpan
from repro.workloads.request import Request

__all__ = [
    "InferenceServer",
    "ModelProfile",
    "llama2_70b_profile",
    "opt_6_7b_profile",
    "vicuna_13b_profile",
]


@dataclass(frozen=True)
class ModelProfile:
    """Latency model of one model/hardware pair.

    ``processing_time = overhead + prefill_per_token * input_tokens +
    decode_per_token * output_tokens``, scaled by a throughput factor
    (used by the SpotServe baseline when a replica loses workers and
    re-parallelises over the survivors).
    """

    name: str
    overhead: float
    prefill_per_token: float
    decode_per_token: float
    max_concurrency: int

    def __post_init__(self) -> None:
        if min(self.overhead, self.prefill_per_token, self.decode_per_token) < 0:
            raise ValueError(f"{self.name}: negative latency coefficients")
        if self.max_concurrency < 1:
            raise ValueError(f"{self.name}: max_concurrency must be >= 1")

    def processing_time(self, request: Request, *, slowdown: float = 1.0) -> float:
        """Pure compute time for one request, excluding queueing."""
        if slowdown < 1.0:
            raise ValueError(f"slowdown {slowdown} < 1")
        base = (
            self.overhead
            + self.prefill_per_token * request.input_tokens
            + self.decode_per_token * request.output_tokens
        )
        return base * slowdown

    def time_to_first_token(self, request: Request, *, slowdown: float = 1.0) -> float:
        """TTFT: overhead + prefill (the §3.1 footnote's metric)."""
        return (self.overhead + self.prefill_per_token * request.input_tokens) * max(
            slowdown, 1.0
        )


def llama2_70b_profile() -> ModelProfile:
    """Llama-2-70B on a g5.48xlarge (8×A10G) running vLLM (§5.1).

    Decoding a 70B model on A10Gs runs at roughly 15–20 tokens/s per
    stream; a median Arena reply (~180 tokens) takes ~10 s, and long
    generations push against the experiment's 100 s timeout.
    """
    return ModelProfile(
        name="llama2-70b-vllm",
        overhead=0.6,
        prefill_per_token=0.0015,
        decode_per_token=0.055,
        max_concurrency=8,
    )


def opt_6_7b_profile() -> ModelProfile:
    """OPT-6.7B on a g4dn.12xlarge (4×T4) running SpotServe (§5.1).

    Smaller model on slower GPUs: ~2–6 s typical requests against a 20 s
    timeout.
    """
    return ModelProfile(
        name="opt-6.7b-spotserve",
        overhead=0.3,
        prefill_per_token=0.0008,
        decode_per_token=0.020,
        max_concurrency=8,
    )


def vicuna_13b_profile() -> ModelProfile:
    """Vicuna-13B, the Fig. 6a breakdown subject.

    Calibrated so a 20-input/44-output-token request takes a few seconds
    of processing — far above the ~0.1 s US↔EU round trip.
    """
    return ModelProfile(
        name="vicuna-13b",
        overhead=0.4,
        prefill_per_token=0.0012,
        decode_per_token=0.042,
        max_concurrency=8,
    )


@dataclass
class _Pending:
    """One admitted request and everything needed to resolve it.

    Replaces the ad-hoc ``(request, on_complete, on_abort,
    on_first_token)`` queue tuples; ``span`` threads the telemetry
    request span (when one is being recorded) down to the point where
    execution actually starts.
    """

    request: Request
    on_complete: Callable[[Request], None]
    on_abort: Callable[[Request], None]
    on_first_token: Optional[Callable[[Request], None]] = None
    span: Optional[RequestSpan] = None


class InferenceServer:
    """FIFO-queued, concurrency-limited execution of requests.

    ``submit`` returns immediately; ``on_complete(request, started_at)``
    fires when the request finishes compute.  ``abort_all`` models a
    preemption killing the endpoint: queued and in-flight requests all
    fail through ``on_abort``.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        profile: ModelProfile,
        *,
        rng: Optional[np.random.Generator] = None,
        jitter: float = 0.05,
    ) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter {jitter} outside [0, 1)")
        self.engine = engine
        self.profile = profile
        self.slowdown = 1.0
        self._rng = rng
        self._jitter = jitter
        self._queue: list[_Pending] = []
        self._in_flight: dict[int, _Pending] = {}
        self._aborted = False
        self._frozen = False
        self._generation = 0  # bumped on abort; stale completions are dropped

    @property
    def ongoing(self) -> int:
        """Requests on this server (queued + executing) — the least-load
        balancer's signal."""
        return len(self._queue) + len(self._in_flight)

    @property
    def executing(self) -> int:
        return len(self._in_flight)

    def submit(
        self,
        request: Request,
        on_complete: Callable[[Request], None],
        on_abort: Callable[[Request], None],
        on_first_token: Optional[Callable[[Request], None]] = None,
        *,
        span: Optional[RequestSpan] = None,
    ) -> None:
        """Enqueue a request for execution.

        ``on_first_token`` fires when the prefill phase finishes — the
        server-side component of TTFT (queueing + overhead + prefill).
        ``span`` (optional) gets its execution-start and first-token
        marks stamped as the request moves through the queue.
        """
        if self._aborted:
            on_abort(request)
            return
        self._queue.append(
            _Pending(request, on_complete, on_abort, on_first_token, span)
        )
        self._drain()

    def _drain(self) -> None:
        while self._queue and len(self._in_flight) < self.profile.max_concurrency:
            pending = self._queue.pop(0)
            request = pending.request
            self._in_flight[request.request_id] = pending
            if pending.span is not None:
                pending.span.mark_exec_start(self.engine.now)
            duration = self.profile.processing_time(request, slowdown=self.slowdown)
            if self._rng is not None and self._jitter > 0:
                duration *= float(
                    self._rng.uniform(1 - self._jitter, 1 + self._jitter)
                )
            generation = self._generation
            if pending.on_first_token is not None or pending.span is not None:
                ttft = self.profile.time_to_first_token(
                    request, slowdown=self.slowdown
                )
                self.engine.call_after(
                    min(ttft, duration),
                    lambda p=pending, g=generation: self._first_token(p, g),
                )
            self.engine.call_after(
                duration, lambda r=request, g=generation: self._finish(r, g)
            )

    def _first_token(self, pending: _Pending, generation: int) -> None:
        if generation != self._generation:
            return
        if pending.span is not None:
            pending.span.mark_first_token(self.engine.now)
        if pending.on_first_token is not None:
            pending.on_first_token(pending.request)

    def _finish(self, request: Request, generation: int) -> None:
        if generation != self._generation:
            return  # killed by an abort since this was scheduled
        if self._frozen:
            return  # stuck endpoint: requests hang, nothing completes
        pending = self._in_flight.pop(request.request_id, None)
        if pending is None:
            return
        pending.on_complete(request)
        self._drain()

    def abort_all(self) -> None:
        """Kill the endpoint (preemption): fail everything on it."""
        self._aborted = True
        self._generation += 1
        pending = list(self._queue) + list(self._in_flight.values())
        self._queue.clear()
        self._in_flight.clear()
        for entry in pending:
            entry.on_abort(entry.request)

    def freeze(self) -> None:
        """Silent failure injection: the endpoint stops responding.

        Unlike :meth:`abort_all` nothing is notified — queued and
        in-flight requests simply hang, and new submissions are accepted
        into the queue.  Only an active readiness probe (§4) can detect
        this state.
        """
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def set_slowdown(self, slowdown: float) -> None:
        """Degrade throughput (SpotServe re-parallelisation on survivors).

        Applies to requests admitted after the call.
        """
        if slowdown < 1.0:
            raise ValueError(f"slowdown {slowdown} < 1")
        self.slowdown = slowdown
