"""Simulated inference engine with continuous batching.

Stands in for vLLM / TGI / Triton / SpotServe endpoints.  The model we
need is the one the paper's latency argument rests on (Fig. 6a): request
processing time is seconds to tens of seconds, split into a fixed
overhead, a prefill phase proportional to input tokens, and a decode
phase proportional to output tokens.  The engine admits up to
``max_concurrency`` requests at once (continuous batching slots); excess
requests wait in a FIFO queue, which is where overload shows up as
queueing delay and, eventually, client timeouts.

Two execution models are supported, selected by the profile:

* **Fixed-rate** (``decode_batch_slope == 0``, the default): every
  request decodes at the profile's batch-1 rate regardless of how many
  streams share the engine.  This is the original model; all recorded
  fixtures and benchmark shapes are pinned against it.
* **Continuous batching** (``decode_batch_slope > 0``): the per-token
  decode time of every in-flight stream grows with batch occupancy
  (``batch_factor``), so overload shows up as decode slowdown and TTFT
  blow-up rather than pure queueing — the regime real vLLM-style
  engines exhibit under load.  In-flight decode work is *re-priced*
  whenever batch membership changes (admit/finish/preempt): the
  outstanding decode budget is converted back to batch-1 seconds at the
  old factor and forward to wall seconds at the new one.  With
  occupancy pinned to 1 the arithmetic reduces to adding exact zeros,
  so batch-1 runs are byte-identical to the fixed-rate model.

Admission control is a bounded FIFO queue (``max_queue``): when every
batching slot is busy and the queue is full, new submissions are *shed*
deterministically (newest request rejected, no callbacks fire) and the
client is expected to retry with backoff.

Profiles are provided for the three model/hardware pairs the evaluation
uses: Llama-2-70B on 8×A10G (vLLM), OPT-6.7B on 4×T4 (SpotServe), and
Vicuna-13B (the Fig. 6a breakdown).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim.engine import EventHandle, SimulationEngine
from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.telemetry.spans import RequestSpan
from repro.workloads.request import Request

__all__ = [
    "InferenceServer",
    "ModelProfile",
    "llama2_70b_profile",
    "opt_6_7b_profile",
    "scale_profile_for_accelerator",
    "vicuna_13b_profile",
]


@dataclass(frozen=True)
class ModelProfile:
    """Latency model of one model/hardware pair.

    ``processing_time = overhead + prefill_per_token * input_tokens +
    decode_per_token * output_tokens``, scaled by a throughput factor
    (used by the SpotServe baseline when a replica loses workers and
    re-parallelises over the survivors).

    ``decode_per_token`` is the *batch-1* decode rate.  When
    ``decode_batch_slope`` is positive, a stream sharing the engine with
    ``b - 1`` others decodes ``batch_factor(b)`` times slower —
    a linear contention model calibrated so ``batch_factor(1) == 1``
    exactly (batch-1 behaviour matches the slope-0 profile to the bit).
    """

    name: str
    overhead: float
    prefill_per_token: float
    decode_per_token: float
    max_concurrency: int
    #: Per-stream decode slowdown per additional co-resident stream.
    #: 0 disables batch contention (the original fixed-rate model).
    decode_batch_slope: float = 0.0

    def __post_init__(self) -> None:
        if min(self.overhead, self.prefill_per_token, self.decode_per_token) < 0:
            raise ValueError(f"{self.name}: negative latency coefficients")
        if self.max_concurrency < 1:
            raise ValueError(f"{self.name}: max_concurrency must be >= 1")
        if self.decode_batch_slope < 0:
            raise ValueError(
                f"{self.name}: decode_batch_slope must be >= 0, "
                f"got {self.decode_batch_slope}"
            )

    def batch_factor(self, batch: int) -> float:
        """Decode slowdown of one stream in a batch of ``batch``.

        Linear contention: ``1 + decode_batch_slope * (batch - 1)``.
        Monotone non-decreasing in ``batch`` and exactly 1.0 at batch 1
        (``slope * 0 == 0.0``, so no rounding creeps in).
        """
        if batch < 1:
            raise ValueError(f"batch size {batch} < 1")
        return 1.0 + self.decode_batch_slope * (batch - 1)

    def processing_time(self, request: Request, *, slowdown: float = 1.0) -> float:
        """Pure batch-1 compute time for one request, excluding queueing."""
        if slowdown < 1.0:
            raise ValueError(f"slowdown {slowdown} < 1")
        base = (
            self.overhead
            + self.prefill_per_token * request.input_tokens
            + self.decode_per_token * request.output_tokens
        )
        return base * slowdown

    def time_to_first_token(self, request: Request, *, slowdown: float = 1.0) -> float:
        """TTFT: overhead + prefill (the §3.1 footnote's metric).

        Rejects ``slowdown < 1`` like :meth:`processing_time` (it used
        to clamp silently, hiding caller bugs the other method raised
        on).
        """
        if slowdown < 1.0:
            raise ValueError(f"slowdown {slowdown} < 1")
        return (self.overhead + self.prefill_per_token * request.input_tokens) * slowdown


def llama2_70b_profile(*, decode_batch_slope: float = 0.0) -> ModelProfile:
    """Llama-2-70B on a g5.48xlarge (8×A10G) running vLLM (§5.1).

    Decoding a 70B model on A10Gs runs at roughly 15–20 tokens/s per
    stream; a median Arena reply (~180 tokens) takes ~10 s, and long
    generations push against the experiment's 100 s timeout.  With
    continuous batching enabled a slope of ~0.08 reproduces vLLM's
    per-stream decode degradation at full occupancy (8 streams ≈ 1.6×
    slower per token than batch 1).
    """
    return ModelProfile(
        name="llama2-70b-vllm",
        overhead=0.6,
        prefill_per_token=0.0015,
        decode_per_token=0.055,
        max_concurrency=8,
        decode_batch_slope=decode_batch_slope,
    )


def opt_6_7b_profile(*, decode_batch_slope: float = 0.0) -> ModelProfile:
    """OPT-6.7B on a g4dn.12xlarge (4×T4) running SpotServe (§5.1).

    Smaller model on slower GPUs: ~2–6 s typical requests against a 20 s
    timeout.  A slope of ~0.05 matches the milder contention of the
    smaller model.
    """
    return ModelProfile(
        name="opt-6.7b-spotserve",
        overhead=0.3,
        prefill_per_token=0.0008,
        decode_per_token=0.020,
        max_concurrency=8,
        decode_batch_slope=decode_batch_slope,
    )


def vicuna_13b_profile(*, decode_batch_slope: float = 0.0) -> ModelProfile:
    """Vicuna-13B, the Fig. 6a breakdown subject.

    Calibrated so a 20-input/44-output-token request takes a few seconds
    of processing — far above the ~0.1 s US↔EU round trip.
    """
    return ModelProfile(
        name="vicuna-13b",
        overhead=0.4,
        prefill_per_token=0.0012,
        decode_per_token=0.042,
        max_concurrency=8,
        decode_batch_slope=decode_batch_slope,
    )


def scale_profile_for_accelerator(
    base: ModelProfile, accelerator: str, *, reference: str = "A10G"
) -> ModelProfile:
    """``base`` retimed for a replica on a different GPU class.

    Prefill and decode coefficients scale by the reference-to-target
    throughput ratio from :data:`repro.cloud.gpus.GPU_PROFILES`; when the
    base profile models continuous batching (positive slope) the slope
    is replaced by the target class's, while slope-0 profiles stay
    fixed-rate (scaling never switches execution models).  Returns
    ``base`` unchanged — the same object — when ``accelerator`` equals
    ``reference``, so homogeneous fleets keep bit-identical timing.
    """
    if accelerator == reference:
        return base
    from repro.cloud.gpus import gpu_profile

    ratio = (
        gpu_profile(reference).tokens_per_second
        / gpu_profile(accelerator).tokens_per_second
    )
    return dataclasses.replace(
        base,
        name=f"{base.name}+{accelerator}",
        prefill_per_token=base.prefill_per_token * ratio,
        decode_per_token=base.decode_per_token * ratio,
        decode_batch_slope=(
            gpu_profile(accelerator).decode_batch_slope
            if base.decode_batch_slope > 0
            else 0.0
        ),
    )


@dataclass
class _Pending:
    """One admitted request and everything needed to resolve it.

    Replaces the ad-hoc ``(request, on_complete, on_abort,
    on_first_token)`` queue tuples; ``span`` threads the telemetry
    request span (when one is being recorded) down to the point where
    execution actually starts.  The batching fields (``prefill_end``,
    ``finish_at``, ``factor``, ``finish_handle``) carry the token-budget
    accounting: ``finish_at`` is the scheduled completion under the
    current batch factor, re-priced whenever membership changes.
    """

    request: Request
    on_complete: Callable[[Request], None]
    on_abort: Callable[[Request], None]
    on_first_token: Optional[Callable[[Request], None]] = None
    span: Optional[RequestSpan] = None
    prefill_end: float = 0.0
    finish_at: float = 0.0
    factor: float = 1.0
    finish_handle: Optional[EventHandle] = None


class InferenceServer:
    """FIFO-queued, concurrency-limited execution of requests.

    ``submit`` returns immediately with ``True`` when the server took
    ownership of the request (a completion or abort callback will fire)
    and ``False`` when admission control shed it (no callback fires; the
    caller retries elsewhere or backs off).  ``abort_all`` models a
    preemption killing the endpoint: queued and in-flight requests all
    fail through ``on_abort``.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        profile: ModelProfile,
        *,
        rng: Optional[np.random.Generator] = None,
        jitter: float = 0.05,
        max_queue: Optional[int] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter {jitter} outside [0, 1)")
        if max_queue is not None and max_queue < 0:
            raise ValueError(f"max_queue {max_queue} < 0")
        self.engine = engine
        self.profile = profile
        self.slowdown = 1.0
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._rng = rng
        self._jitter = jitter
        self._max_queue = max_queue
        self._queue: list[_Pending] = []
        self._in_flight: dict[int, _Pending] = {}
        self._aborted = False
        self._frozen = False
        self._generation = 0  # bumped on abort; stale completions are dropped
        self._shed = 0
        #: Continuous batching on? (slope-0 profiles keep the original
        #: fixed-rate scheduling bit-for-bit, with zero re-pricing work.)
        self._batching = profile.decode_batch_slope > 0.0

    @property
    def ongoing(self) -> int:
        """Requests on this server (queued + executing) — the least-load
        balancer's signal."""
        return len(self._queue) + len(self._in_flight)

    @property
    def executing(self) -> int:
        """Requests holding a batching slot — the batch occupancy."""
        return len(self._in_flight)

    @property
    def queue_depth(self) -> int:
        """Requests waiting for a batching slot."""
        return len(self._queue)

    @property
    def shed_count(self) -> int:
        """Requests rejected by admission control since startup."""
        return self._shed

    @property
    def max_queue(self) -> Optional[int]:
        return self._max_queue

    def submit(
        self,
        request: Request,
        on_complete: Callable[[Request], None],
        on_abort: Callable[[Request], None],
        on_first_token: Optional[Callable[[Request], None]] = None,
        *,
        span: Optional[RequestSpan] = None,
        urgent: bool = False,
    ) -> bool:
        """Enqueue a request for execution.

        Returns ``False`` when the request was shed by admission control
        (every batching slot busy and the bounded queue full) — no
        callback will ever fire for it.  ``urgent`` bypasses the queue
        bound (readiness probes must observe an overloaded-but-healthy
        replica instead of being shed into a false failure).

        ``on_first_token`` fires when the prefill phase finishes — the
        server-side component of TTFT (queueing + overhead + prefill).
        ``span`` (optional) gets its execution-start and first-token
        marks stamped as the request moves through the queue.
        """
        if self._aborted:
            on_abort(request)
            return True
        if (
            not urgent
            and self._max_queue is not None
            and len(self._in_flight) >= self.profile.max_concurrency
            and len(self._queue) >= self._max_queue
        ):
            self._shed += 1
            return False
        if span is not None:
            span.note_queue_depth(len(self._queue))
        self._queue.append(
            _Pending(request, on_complete, on_abort, on_first_token, span)
        )
        self._drain()
        return True

    def _drain(self) -> None:
        profiler = self.profiler
        do_profile = profiler.enabled
        if do_profile:
            t0 = profiler.clock()
        admitted = False
        while self._queue and len(self._in_flight) < self.profile.max_concurrency:
            admitted = True
            pending = self._queue.pop(0)
            request = pending.request
            self._in_flight[request.request_id] = pending
            if pending.span is not None:
                pending.span.mark_exec_start(
                    self.engine.now, batch=len(self._in_flight)
                )
            duration = self.profile.processing_time(request, slowdown=self.slowdown)
            if self._rng is not None and self._jitter > 0:
                duration *= float(
                    self._rng.uniform(1 - self._jitter, 1 + self._jitter)
                )
            generation = self._generation
            ttft = self.profile.time_to_first_token(request, slowdown=self.slowdown)
            ttft = min(ttft, duration)
            if pending.on_first_token is not None or pending.span is not None:
                self.engine.call_after(
                    ttft,
                    lambda p=pending, g=generation: self._first_token(p, g),
                )
            if not self._batching:
                # Fixed-rate model: one finish event, never re-priced.
                self.engine.call_after(
                    duration, lambda r=request, g=generation: self._finish(r, g)
                )
                continue
            # Continuous batching: price the decode budget at the
            # occupancy this admission produced.  ``duration - ttft`` is
            # the batch-1 decode budget; the surcharge term is an exact
            # +0.0 at factor 1, keeping batch-1 runs byte-identical to
            # the fixed-rate model.
            pending.prefill_end = self.engine.now + ttft
            pending.factor = self.profile.batch_factor(len(self._in_flight))
            pending.finish_at = (
                self.engine.now
                + duration
                + (duration - ttft) * (pending.factor - 1.0)
            )
            pending.finish_handle = self.engine.call_at(
                pending.finish_at,
                lambda r=request, g=generation: self._finish(r, g),
            )
        if admitted or self._batching:
            self._reprice()
        if do_profile:
            profiler.accumulate("inference.drain", profiler.clock() - t0)

    def _reprice(self) -> None:
        """Re-price in-flight decode work after a membership change.

        The outstanding wall-clock decode budget of every stream is
        converted back to batch-1 seconds at its old factor and forward
        to wall seconds at the factor of the current occupancy; the
        finish event moves accordingly.  Streams whose factor is
        unchanged are untouched (their scheduled event stands), so a
        pinned batch or a slope-0 profile never reschedules anything.
        """
        if not self._batching or not self._in_flight:
            return
        profiler = self.profiler
        do_profile = profiler.enabled
        if do_profile:
            t0 = profiler.clock()
        now = self.engine.now
        factor = self.profile.batch_factor(len(self._in_flight))
        for pending in self._in_flight.values():
            if pending.factor == factor:
                continue
            anchor = max(now, pending.prefill_end)
            remaining = max(pending.finish_at - anchor, 0.0)
            pending.finish_at = anchor + (remaining / pending.factor) * factor
            pending.factor = factor
            if pending.finish_handle is not None:
                pending.finish_handle.cancel()
            generation = self._generation
            pending.finish_handle = self.engine.call_at(
                pending.finish_at,
                lambda r=pending.request, g=generation: self._finish(r, g),
            )
        if do_profile:
            profiler.accumulate("inference.reprice", profiler.clock() - t0)

    def _first_token(self, pending: _Pending, generation: int) -> None:
        if generation != self._generation:
            return
        if pending.span is not None:
            pending.span.mark_first_token(self.engine.now)
        if pending.on_first_token is not None:
            pending.on_first_token(pending.request)

    def _finish(self, request: Request, generation: int) -> None:
        if generation != self._generation:
            return  # killed by an abort since this was scheduled
        if self._frozen:
            return  # stuck endpoint: requests hang, nothing completes
        pending = self._in_flight.pop(request.request_id, None)
        if pending is None:
            return
        pending.on_complete(request)
        self._drain()

    def abort_all(self) -> None:
        """Kill the endpoint (preemption): fail everything on it."""
        self._aborted = True
        self._generation += 1
        pending = list(self._queue) + list(self._in_flight.values())
        self._queue.clear()
        self._in_flight.clear()
        for entry in pending:
            if entry.finish_handle is not None:
                entry.finish_handle.cancel()
            entry.on_abort(entry.request)

    def freeze(self) -> None:
        """Silent failure injection: the endpoint stops responding.

        Unlike :meth:`abort_all` nothing is notified — queued and
        in-flight requests simply hang, and new submissions are accepted
        into the queue.  Only an active readiness probe (§4) can detect
        this state.
        """
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def set_slowdown(self, slowdown: float) -> None:
        """Degrade throughput (SpotServe re-parallelisation on survivors).

        Applies to requests admitted after the call.
        """
        if slowdown < 1.0:
            raise ValueError(f"slowdown {slowdown} < 1")
        self.slowdown = slowdown
