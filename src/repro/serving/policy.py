"""The policy interface between the service controller and its brain.

The controller owns *mechanism* (launching, probing, terminating,
routing); a :class:`ServingPolicy` owns *policy*: how many spot and
on-demand replicas to hold, and where to put the next spot replica.
SpotHedge (``repro.core``) and every baseline system (``repro.baselines``)
implement this interface, so all of them run against the identical
controller, cloud, and workload — the apples-to-apples setup of §5.

The controller calls, on every reconciliation tick:

1. :meth:`ServingPolicy.target_mix` with an :class:`Observation` →
   a :class:`MixTarget`;
2. :meth:`ServingPolicy.select_spot_zone` once per missing spot replica,
   and :meth:`ServingPolicy.select_od_zone` once per missing on-demand
   replica;

and feeds back lifecycle events through the ``on_spot_*`` hooks (these
drive Alg. 1's Z_A/Z_P bookkeeping).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, AbstractSet, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.telemetry.audit import PolicyAuditLog

__all__ = ["MixTarget", "Observation", "ServingPolicy"]


@dataclass(frozen=True)
class Observation:
    """What a policy may observe — mirrors what real clients can see.

    Counts are *replicas* (for multi-worker replicas, worker instances
    are aggregated by the controller).  ``spot_by_zone`` counts alive
    (provisioning/initializing/ready) spot replicas per zone.
    """

    now: float
    n_tar: int
    spot_launched: int
    spot_ready: int
    od_launched: int
    od_ready: int
    spot_by_zone: dict[str, int] = field(default_factory=dict)

    @property
    def total_ready(self) -> int:
        return self.spot_ready + self.od_ready


@dataclass(frozen=True)
class MixTarget:
    """Desired spot/on-demand replica counts.

    ``count_provisioning_spot`` controls whether in-flight spot launches
    count toward ``spot_target``.  SpotHedge and ASG count them; MArk and
    AWSSpot (which assume CPU-fast readiness) do not, reproducing the
    over-request behaviour of Fig. 12.
    """

    spot_target: int
    od_target: int
    count_provisioning_spot: bool = True

    def __post_init__(self) -> None:
        if self.spot_target < 0 or self.od_target < 0:
            raise ValueError(f"negative targets {self}")


class ServingPolicy(abc.ABC):
    """Replica-mixture and placement policy."""

    #: Human-readable system name (used in experiment tables).
    name: str = "policy"

    #: Whether the controller should exclude recently-failed zones from
    #: this policy's placement choices for a short cooldown.  Systems
    #: built for CPU-era spot (MArk, AWSSpot) lack this failover
    #: behaviour and keep hammering unavailable zones — which is what
    #: produces the Fig. 12 over-requesting.
    respects_zone_cooldown: bool = True

    #: Decision audit log (``repro.telemetry.audit``); ``None`` keeps the
    #: policy silent.  Attached by the service when telemetry is on.
    audit: Optional[PolicyAuditLog] = None

    #: Whether this policy's decisions depend only on the non-temporal
    #: fields of the :class:`Observation` (fleet counts and zone
    #: occupancy), never on ``obs.now`` or on call count.  Stationary
    #: policies must return the same :class:`MixTarget` for two
    #: observations that differ only in ``now``, and any internal
    #: mutation in :meth:`target_mix` must be idempotent under repeated
    #: identical observations.  The hybrid replay engine
    #: (``repro.experiments.fastpath``) uses this declaration to
    #: fast-forward across quiescent trace windows without consulting
    #: the policy each step; policies that keep time-indexed state
    #: (e.g. MArk's sliding prediction window) must leave it ``False``.
    stationary_decisions: bool = False

    #: Instance attributes a stationary policy (or its helpers) may
    #: mutate inside :meth:`target_mix` without breaking the
    #: ``stationary_decisions`` contract — caches and interning tables
    #: whose mutation is idempotent under repeated identical
    #: observations.  Unioned across the MRO; verified statically by
    #: ``repro lint --deep`` (pass ``stationarity``): any other write
    #: reachable from the decision surface of a stationary policy is a
    #: ``REPRO-D201`` finding, and entries that no reachable method
    #: writes are flagged stale (``REPRO-D203``).
    stationary_state: frozenset = frozenset()

    def attach_audit(self, audit: PolicyAuditLog) -> None:
        """Start recording this policy's decisions into ``audit``.

        Subclasses with internal decision-makers (placers) should
        override to propagate the log to them as well.
        """
        self.audit = audit

    @abc.abstractmethod
    def target_mix(self, obs: Observation) -> MixTarget:
        """Desired number of spot and on-demand replicas right now."""

    @abc.abstractmethod
    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        """Zone for the next spot launch, or ``None`` to hold off.

        ``excluded`` lists zones whose launches already failed in the
        current reconciliation round; implementations should avoid them
        until the next round.
        """

    def select_od_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        """Zone for the next on-demand launch.

        Default: reuse the spot zone choice (on-demand capacity is
        plentiful everywhere, §5.1 discussion).
        """
        return self.select_spot_zone(obs, excluded)

    # ------------------------------------------------------------------
    # Lifecycle feedback (drives Alg. 1 state in placers that track it)
    # ------------------------------------------------------------------
    def on_spot_ready(self, zone_id: str) -> None:
        """A spot replica became READY in ``zone_id``."""

    def on_spot_preempted(self, zone_id: str) -> None:
        """A spot replica was preempted in ``zone_id``."""

    def on_spot_launch_failed(self, zone_id: str) -> None:
        """A spot launch attempt failed (no capacity) in ``zone_id``."""
