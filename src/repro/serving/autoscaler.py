"""Load-based autoscaler (§4, "Autoscaler").

The autoscaler tracks the average request rate R_t over a sliding window
(default one minute) and proposes a candidate target
``N_Can = ceil(R_t / Q_Tar)``.  The live target ``N_Tar`` only moves when
the candidate has been consistently above (for ``upscale_delay``) or
below (for ``downscale_delay``) the current target, which filters the
bursty noise of workloads like Arena.  ``fixed_target`` pins ``N_Tar``
for experiments that hold the desired replica count constant (§5.2).

A second mode (``autoscale_mode="slo"`` on the policy config) folds
latency SLO attainment into the candidate: the client reports each
request's time-to-first-token and time-per-output-token, the autoscaler
tracks the fraction of recent samples violating their SLO, and when that
fraction exceeds ``slo_violation_threshold`` the candidate is bumped
above the QPS-derived one.  QPS alone cannot see batch-level contention
— a fleet can be keeping up on throughput while every request decodes
at 2x slowness because batches are saturated — so the SLO signal is what
lets the autoscaler react to the continuous-batching overload regime.
"""

from __future__ import annotations

import logging
import math
from collections import deque
from typing import Optional

from repro.serving.spec import ReplicaPolicyConfig

__all__ = ["Autoscaler"]

logger = logging.getLogger(__name__)


class Autoscaler:
    """QPS-window autoscaler computing the paper's N_Tar(t)."""

    def __init__(self, config: ReplicaPolicyConfig, *, initial_target: int = 1) -> None:
        self.config = config
        if config.fixed_target is not None:
            initial_target = config.fixed_target
        self._n_tar = self._clamp(initial_target)
        self._arrivals: deque[float] = deque()
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None
        #: (time, violated) samples for TTFT / TPOT, pruned to slo_window.
        self._slo_samples: deque[tuple[float, bool]] = deque()

    def _clamp(self, target: int) -> int:
        return max(self.config.min_replicas, min(target, self.config.max_replicas))

    @property
    def n_tar(self) -> int:
        """The current target number of ready replicas, N_Tar(t)."""
        return self._n_tar

    def record_request(self, time: float) -> None:
        """Note one request arrival (fed by the load balancer)."""
        self._arrivals.append(time)

    def request_rate(self, now: float) -> float:
        """Average request rate over the trailing window.

        During warm-up (``now < qps_window``) the divisor is the elapsed
        time, not the full window — dividing by the window there
        underestimates R_t and delays the first upscale by however much
        of the window has not happened yet.
        """
        cutoff = now - self.config.qps_window
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        window = min(now, self.config.qps_window)
        if window <= 0.0:
            return 0.0
        return len(self._arrivals) / window

    # -- SLO signal -----------------------------------------------------
    def record_ttft(self, time: float, value: float) -> None:
        """One client-observed time-to-first-token sample."""
        slo = self.config.ttft_slo
        if slo is not None:
            self._slo_samples.append((time, value > slo))

    def record_tpot(self, time: float, value: float) -> None:
        """One client-observed time-per-output-token sample."""
        slo = self.config.tpot_slo
        if slo is not None:
            self._slo_samples.append((time, value > slo))

    def slo_violation_rate(self, now: float) -> float:
        """Fraction of SLO samples in the trailing ``slo_window`` that
        violated their objective (0.0 with no samples)."""
        cutoff = now - self.config.slo_window
        while self._slo_samples and self._slo_samples[0][0] < cutoff:
            self._slo_samples.popleft()
        if not self._slo_samples:
            return 0.0
        violated = sum(1 for _, bad in self._slo_samples if bad)
        return violated / len(self._slo_samples)

    def candidate_target(self, now: float) -> int:
        """N_Can = ceil(R_t / Q_Tar), clamped to the replica bounds.

        The QPS-derived candidate is handed to the configured autoscale
        mode (:data:`repro.serving.registry.AUTOSCALE_MODES`), which may
        raise it; in ``slo`` mode, when the recent violation rate
        exceeds the configured threshold the candidate is raised to at
        least ``N_Tar + ceil(rate * N_Tar)`` — proportional pressure:
        the worse the attainment, the harder the push — before clamping.
        """
        from repro.serving.registry import AUTOSCALE_MODES

        rate = self.request_rate(now)
        candidate = math.ceil(rate / self.config.target_qps_per_replica)
        mode = AUTOSCALE_MODES.get(self.config.autoscale_mode)
        return self._clamp(mode(self, now, candidate))

    def evaluate(self, now: float) -> int:
        """Update and return N_Tar; call once per controller tick."""
        if self.config.fixed_target is not None:
            self._n_tar = self._clamp(self.config.fixed_target)
            return self._n_tar
        candidate = self.candidate_target(now)
        if candidate > self._n_tar:
            self._below_since = None
            if self._above_since is None:
                self._above_since = now
            if now - self._above_since >= self.config.upscale_delay:
                logger.debug("t=%.1f upscale to N_Tar=%d", now, candidate)
                self._n_tar = candidate
                self._above_since = None
        elif candidate < self._n_tar:
            self._above_since = None
            if self._below_since is None:
                self._below_since = now
            if now - self._below_since >= self.config.downscale_delay:
                logger.debug("t=%.1f downscale to N_Tar=%d", now, candidate)
                self._n_tar = candidate
                self._below_since = None
        else:
            self._above_since = None
            self._below_since = None
        return self._n_tar


# -- autoscale modes ------------------------------------------------------
# A mode maps the QPS-derived candidate to the final (unclamped)
# candidate: ``mode(autoscaler, now, qps_candidate) -> int``.  Registered
# by name so specs can select third-party scaling signals.


def _qps_mode(autoscaler: Autoscaler, now: float, candidate: int) -> int:
    """Scale on request rate only (the paper's default)."""
    return candidate


def _slo_mode(autoscaler: Autoscaler, now: float, candidate: int) -> int:
    """Additionally push the target up under TTFT/TPOT SLO violations."""
    violation = autoscaler.slo_violation_rate(now)
    if violation > autoscaler.config.slo_violation_threshold:
        bump = max(1, math.ceil(violation * autoscaler.n_tar))
        candidate = max(candidate, autoscaler.n_tar + bump)
    return candidate


from repro.serving.registry import AUTOSCALE_MODES as _AUTOSCALE_MODES  # noqa: E402

_AUTOSCALE_MODES.register("qps", _qps_mode)
_AUTOSCALE_MODES.register("slo", _slo_mode)
