"""Load-based autoscaler (§4, "Autoscaler").

The autoscaler tracks the average request rate R_t over a sliding window
(default one minute) and proposes a candidate target
``N_Can = ceil(R_t / Q_Tar)``.  The live target ``N_Tar`` only moves when
the candidate has been consistently above (for ``upscale_delay``) or
below (for ``downscale_delay``) the current target, which filters the
bursty noise of workloads like Arena.  ``fixed_target`` pins ``N_Tar``
for experiments that hold the desired replica count constant (§5.2).
"""

from __future__ import annotations

import logging
import math
from collections import deque
from typing import Optional

from repro.serving.spec import ReplicaPolicyConfig

__all__ = ["Autoscaler"]

logger = logging.getLogger(__name__)


class Autoscaler:
    """QPS-window autoscaler computing the paper's N_Tar(t)."""

    def __init__(self, config: ReplicaPolicyConfig, *, initial_target: int = 1) -> None:
        self.config = config
        if config.fixed_target is not None:
            initial_target = config.fixed_target
        self._n_tar = self._clamp(initial_target)
        self._arrivals: deque[float] = deque()
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None

    def _clamp(self, target: int) -> int:
        return max(self.config.min_replicas, min(target, self.config.max_replicas))

    @property
    def n_tar(self) -> int:
        """The current target number of ready replicas, N_Tar(t)."""
        return self._n_tar

    def record_request(self, time: float) -> None:
        """Note one request arrival (fed by the load balancer)."""
        self._arrivals.append(time)

    def request_rate(self, now: float) -> float:
        """Average request rate over the trailing window."""
        cutoff = now - self.config.qps_window
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        return len(self._arrivals) / self.config.qps_window

    def candidate_target(self, now: float) -> int:
        """N_Can = ceil(R_t / Q_Tar), clamped to the replica bounds."""
        rate = self.request_rate(now)
        return self._clamp(math.ceil(rate / self.config.target_qps_per_replica))

    def evaluate(self, now: float) -> int:
        """Update and return N_Tar; call once per controller tick."""
        if self.config.fixed_target is not None:
            self._n_tar = self._clamp(self.config.fixed_target)
            return self._n_tar
        candidate = self.candidate_target(now)
        if candidate > self._n_tar:
            self._below_since = None
            if self._above_since is None:
                self._above_since = now
            if now - self._above_since >= self.config.upscale_delay:
                logger.debug("t=%.1f upscale to N_Tar=%d", now, candidate)
                self._n_tar = candidate
                self._above_since = None
        elif candidate < self._n_tar:
            self._above_since = None
            if self._below_since is None:
                self._below_since = now
            if now - self._below_since >= self.config.downscale_delay:
                logger.debug("t=%.1f downscale to N_Tar=%d", now, candidate)
                self._n_tar = candidate
                self._below_since = None
        else:
            self._above_since = None
            self._below_since = None
        return self._n_tar
