"""SkyService: one-call wiring of cloud, controller, policy, and client.

This is the facade a downstream user interacts with (the programmatic
equivalent of ``sky serve up``): give it a service spec, a policy, a
model profile, a spot trace, and a workload; run it; read the report.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cloud.catalog import Catalog
from repro.cloud.network import NetworkModel, default_network
from repro.cloud.provider import CloudConfig, SimCloud
from repro.cloud.topology import Topology
from repro.cloud.traces import SpotTrace
from repro.serving.client import ClientStats, RetryPolicy, ServiceClient
from repro.serving.controller import ServiceController
from repro.serving.inference import ModelProfile, llama2_70b_profile
from repro.serving.policy import ServingPolicy
from repro.serving.spec import ServiceSpec
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import LatencySummary
from repro.sim.rng import RngRegistry
from repro.telemetry.audit import PolicyAuditLog
from repro.telemetry.events import CostSnapshot, EventBus
from repro.workloads.request import Workload

if TYPE_CHECKING:
    from repro.chaos.injector import ChaosInjector
    from repro.chaos.overlay import CompiledScenario
    from repro.chaos.spec import ScenarioSpec

__all__ = ["ServiceReport", "SkyService"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceReport:
    """Everything the paper reports per system per run."""

    system: str
    duration: float
    total_requests: int
    completed: int
    failed: int
    failure_rate: float
    latency: Optional[LatencySummary]
    #: Time-to-first-token distribution (§3.1 footnote): queueing +
    #: prefill + WAN round trip of the first successful attempt.
    ttft: Optional[LatencySummary]
    #: Raw per-request latencies of completed requests, for effective
    #: (failure-inclusive) percentile computations downstream.
    latency_samples: tuple[float, ...]
    spot_cost: float
    od_cost: float
    availability: float
    preemptions: int
    launch_failures: int

    @property
    def total_cost(self) -> float:
        return self.spot_cost + self.od_cost

    def latency_boxplot(self):
        """Fig. 9 box-plot stats of completed-request latency (10/90
        whiskers, 25/75 box, median line, mean marker); ``None`` when no
        requests completed."""
        from repro.sim.metrics import LatencyRecorder

        recorder = LatencyRecorder()
        recorder.extend(self.latency_samples)
        return recorder.boxplot()

    def effective_percentile(self, q: float, timeout: float) -> float:
        """Latency percentile with failed requests counted at the
        timeout — the client-experienced distribution, immune to the
        survivorship bias of completed-only percentiles when a system
        fails most of its requests."""
        samples = list(self.latency_samples) + [timeout] * self.failed
        if not samples:
            raise ValueError("no requests to take a percentile of")
        return float(np.percentile(samples, q))

    def cost_relative_to_on_demand(self, od_hourly: float, n_tar: int) -> float:
        """Cost as a fraction of running n_tar on-demand replicas for the
        whole experiment — the paper's cost normalisation."""
        baseline = od_hourly * n_tar * self.duration / 3600.0
        if baseline <= 0:
            raise ValueError("non-positive on-demand baseline")
        return self.total_cost / baseline


class SkyService:
    """A deployed service: simulated cloud + controller + client."""

    def __init__(
        self,
        spec: ServiceSpec,
        policy: ServingPolicy,
        trace: SpotTrace,
        *,
        profile: Optional[ModelProfile] = None,
        topology: Optional[Topology] = None,
        catalog: Optional[Catalog] = None,
        cloud_config: Optional[CloudConfig] = None,
        network: Optional[NetworkModel] = None,
        client_region: str = "aws:us-west-2",
        seed: int = 0,
        adaptive_parallelism: bool = False,
        telemetry: Optional[EventBus] = None,
        scenario: Optional["ScenarioSpec"] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.spec = spec
        self.policy = policy
        self.rng = RngRegistry(seed)
        self.engine = SimulationEngine(telemetry=telemetry)
        self.telemetry = self.engine.telemetry
        if self.telemetry.enabled and policy.audit is None:
            # Every Alg. 1 step lands in the audit log and, through the
            # bus, in whatever sinks the caller attached.
            policy.attach_audit(
                PolicyAuditLog(policy=policy.name, bus=self.telemetry)
            )
        self.scenario = scenario
        self._compiled: Optional["CompiledScenario"] = None
        if scenario is not None:
            # Chaos is lazy-imported: runs without a scenario never load
            # (or pay for) the chaos subsystem at all.
            from repro.chaos.overlay import compile_scenario

            self._compiled = compile_scenario(scenario, trace, root_seed=seed)
            trace = self._compiled.trace
        self.network = network or default_network()
        if self._compiled is not None and self._compiled.network_degradations:
            from repro.chaos.injector import DegradedNetworkModel

            self.network = DegradedNetworkModel(
                self.network, self.engine, self._compiled.network_degradations
            )
        self.cloud = SimCloud(
            self.engine,
            trace,
            topology=topology,
            catalog=catalog,
            config=cloud_config,
            rng=self.rng,
        )
        self.controller = ServiceController(
            self.engine,
            self.cloud,
            spec,
            policy,
            profile or llama2_70b_profile(),
            network=self.network,
            rng=self.rng.stream("inference"),
            client_region=client_region,
        )
        self.controller._adaptive_parallelism = adaptive_parallelism
        self.injector: Optional["ChaosInjector"] = None
        if self._compiled is not None:
            from repro.chaos.injector import ChaosInjector

            self.injector = ChaosInjector(
                self._compiled, self.engine, self.cloud, root_seed=seed
            )
            self.injector.arm()
        self.client: Optional[ServiceClient] = None
        self.client_region = client_region
        #: Client retry behaviour: None keeps the legacy fixed-interval
        #: retry; a RetryPolicy switches to seeded jittered backoff.
        self.retry_policy = retry_policy

    def run(self, workload: Workload, duration: float) -> ServiceReport:
        """Serve ``workload`` for ``duration`` seconds and report."""
        logger.info(
            "serving %d requests for %.0fs with %s",
            len(workload),
            duration,
            self.policy.name,
        )
        self.client = ServiceClient(
            self.controller,
            workload,
            client_region=self.client_region,
            backoff=self.retry_policy,
            rng=(
                self.rng.stream("client") if self.retry_policy is not None else None
            ),
        )
        self.controller.start()
        self.client.start()
        self.engine.run_until(duration)
        return self.report(duration)

    def down(self) -> None:
        """Tear the service down (``sky serve down``): terminate every
        replica's instances and stop billing accrual.

        The engine keeps running (other services may share it); this
        service simply stops holding resources.
        """
        self.controller.stop()
        for replica in list(self.controller.replicas):
            for worker in list(replica.workers):
                self.cloud.terminate(worker)
            replica.kill()
        self.controller.replicas.clear()

    def report(self, duration: float) -> ServiceReport:
        if self.client is None:
            raise RuntimeError("run() must be called before report()")
        stats: ClientStats = self.client.stats()
        cost = self.cloud.billing.breakdown(self.engine.now)
        if self.telemetry.enabled:
            self.telemetry.emit(
                CostSnapshot(
                    time=self.engine.now,
                    spot=cost.spot,
                    on_demand=cost.on_demand,
                    total=cost.total,
                )
            )
        n_tar = self.controller.autoscaler.n_tar
        return ServiceReport(
            system=self.policy.name,
            duration=duration,
            total_requests=stats.total_requests,
            completed=stats.completed,
            failed=stats.failed,
            failure_rate=stats.failure_rate,
            latency=stats.latency,
            ttft=stats.ttft,
            latency_samples=tuple(self.client.latencies.samples),
            spot_cost=cost.spot,
            od_cost=cost.on_demand,
            availability=self.controller.ready_total_series.fraction_at_least(
                max(n_tar, 1), 0.0, duration
            ),
            preemptions=int(self.controller.preemption_count.value),
            launch_failures=int(self.controller.launch_failure_count.value),
        )
