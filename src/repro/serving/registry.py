"""Named policy registries — the plugin seam of the serving layer.

Placers, load balancers, and autoscale modes used to be validated
against hard-coded string tuples in ``serving/spec.py`` and constructed
by if-chains in their factory functions.  A :class:`PolicyRegistry`
replaces both: implementations register under a name (the
``SpotPlacer.REGISTRY`` idiom from the SkyPilot code base), spec
validation asks the registry, and factories instantiate by lookup — so
a third-party policy becomes available to every spec and CLI flag by
registering itself, with no edits to this repository.

Three registries ship:

* :data:`PLACERS` — :class:`~repro.core.placement.SpotPlacer`
  subclasses, keyed by the spec's ``spot_placer`` name;
* :data:`BALANCERS` — balancer factories keyed by
  ``load_balancing_policy`` (signature of
  :func:`~repro.serving.load_balancer.make_balancer`'s per-policy
  branches: ``factory(client_region, network)``);
* :data:`AUTOSCALE_MODES` — candidate-target strategies keyed by
  ``autoscale_mode`` (``strategy(autoscaler, now, qps_candidate) ->
  int``, returning the unclamped candidate).

Built-in implementations live in :mod:`repro.core.placement`,
:mod:`repro.serving.load_balancer`, and
:mod:`repro.serving.autoscaler`; the registry imports them lazily on
first lookup so importing this module alone stays cheap and free of
cycles.

Third-party plugins register either imperatively::

    from repro.serving.registry import PLACERS

    @PLACERS.register("my_placer")
    class MyPlacer(SpotPlacer): ...

or through a ``repro.policies`` entry point, loaded explicitly with
:func:`load_entry_point_plugins` (never implicitly: simulation results
must not depend on what happens to be pip-installed).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, TypeVar

__all__ = [
    "AUTOSCALE_MODES",
    "BALANCERS",
    "PLACERS",
    "PolicyRegistry",
    "load_entry_point_plugins",
]

_F = TypeVar("_F")

#: Entry-point group scanned by :func:`load_entry_point_plugins`.
ENTRY_POINT_GROUP = "repro.policies"


class PolicyRegistry:
    """A named registry of policy factories.

    ``kind`` is the human-readable noun used in error messages
    ("spot placer", "load balancing policy", ...).  Lookup failures
    always list the registered names, matching the long-standing
    ``make_balancer`` error-message idiom.
    """

    def __init__(
        self,
        kind: str,
        *,
        builtin_modules: tuple[str, ...] = (),
    ) -> None:
        self.kind = kind
        self._factories: dict[str, Any] = {}
        #: Modules whose import registers the built-in implementations.
        #: Imported lazily on first lookup to keep this module cycle-free.
        self._builtin_modules = builtin_modules
        self._builtins_loaded = not builtin_modules

    # -- registration --------------------------------------------------
    def register(
        self, name: str, factory: Optional[_F] = None
    ) -> Callable[[_F], _F] | _F:
        """Register ``factory`` under ``name``.

        Usable as a decorator (``@REGISTRY.register("name")``) or a
        plain call (``REGISTRY.register("name", factory)``).  Duplicate
        names are an error: silently shadowing a policy would make two
        runs of the same spec mean different things.
        """
        if factory is None:

            def decorator(obj: _F) -> _F:
                self.register(name, obj)
                return obj

            return decorator
        if not name or not isinstance(name, str):
            raise ValueError(f"invalid {self.kind} name {name!r}")
        if name in self._factories:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"({self._factories[name]!r})"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove a registration (test hygiene for plugin round-trips)."""
        self._ensure_builtins()
        self._factories.pop(name, None)

    # -- lookup --------------------------------------------------------
    def _ensure_builtins(self) -> None:
        if self._builtins_loaded:
            return
        self._builtins_loaded = True
        import importlib

        for module in self._builtin_modules:
            importlib.import_module(module)

    def get(self, name: str) -> Any:
        """The factory registered under ``name``.

        Raises :class:`ValueError` naming the unknown entry and listing
        every registered name.
        """
        self._ensure_builtins()
        factory = self._factories.get(name)
        if factory is None:
            raise ValueError(
                f"unknown {self.kind} {name!r}: expected one of {self.names()}"
            )
        return factory

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        self._ensure_builtins()
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        self._ensure_builtins()
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._factories)

    def validate(self, name: str) -> str:
        """Validate-and-return ``name`` (spec ``__post_init__`` helper)."""
        self.get(name)
        return name


#: Spot placers (``replica_policy.spot_placer``).
PLACERS = PolicyRegistry(
    "spot placer", builtin_modules=("repro.core.placement",)
)

#: Load balancing policies (``load_balancing_policy``).
BALANCERS = PolicyRegistry(
    "load balancing policy", builtin_modules=("repro.serving.load_balancer",)
)

#: Autoscale candidate-target modes (``replica_policy.autoscale_mode``).
AUTOSCALE_MODES = PolicyRegistry(
    "autoscale mode", builtin_modules=("repro.serving.autoscaler",)
)


def load_entry_point_plugins(group: str = ENTRY_POINT_GROUP) -> list[str]:
    """Load third-party policy plugins from package entry points.

    Each entry point in ``group`` is loaded and, if callable, called
    with no arguments — the conventional hook shape is a module-level
    ``def register() -> None`` that calls ``PLACERS.register`` /
    ``BALANCERS.register`` / ``AUTOSCALE_MODES.register``.  Returns the
    names of the entry points loaded (sorted, for deterministic logs).

    Loading is explicit by design: a simulation's behaviour must be a
    function of its spec and seed, never of the site-packages contents,
    so nothing in the run path calls this implicitly.
    """
    from importlib import metadata

    loaded: list[str] = []
    try:
        entry_points = metadata.entry_points(group=group)
    except TypeError:  # pragma: no cover - Python < 3.10 select API
        entry_points = metadata.entry_points().get(group, ())  # type: ignore[call-arg]
    for entry in sorted(entry_points, key=lambda e: e.name):
        hook = entry.load()
        if callable(hook):
            hook()
        loaded.append(entry.name)
    return loaded
