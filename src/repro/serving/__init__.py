"""The SkyServe serving system (§4): controller, replicas, balancers,
autoscaler, simulated inference engines, client, and service facade."""

from repro.serving.autoscaler import Autoscaler
from repro.serving.client import ClientStats, RetryPolicy, ServiceClient
from repro.serving.controller import ServiceController
from repro.serving.fleet import FleetService, ServiceFleet
from repro.serving.inference import (
    InferenceServer,
    ModelProfile,
    llama2_70b_profile,
    opt_6_7b_profile,
    vicuna_13b_profile,
)
from repro.serving.load_balancer import (
    LeastLoadBalancer,
    LoadBalancer,
    LocalityAwareBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from repro.serving.policy import MixTarget, Observation, ServingPolicy
from repro.serving.registry import (
    AUTOSCALE_MODES,
    BALANCERS,
    PLACERS,
    PolicyRegistry,
    load_entry_point_plugins,
)
from repro.serving.replica import Replica, ReplicaState
from repro.serving.service import ServiceReport, SkyService
from repro.serving.spec import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
)

__all__ = [
    "AUTOSCALE_MODES",
    "BALANCERS",
    "PLACERS",
    "Autoscaler",
    "ClientStats",
    "DomainFilter",
    "FleetService",
    "InferenceServer",
    "LeastLoadBalancer",
    "LoadBalancer",
    "LocalityAwareBalancer",
    "MixTarget",
    "ModelProfile",
    "Observation",
    "PolicyRegistry",
    "Replica",
    "ReplicaPolicyConfig",
    "ReplicaState",
    "ResourceSpec",
    "RetryPolicy",
    "RoundRobinBalancer",
    "ServiceClient",
    "ServiceController",
    "ServiceFleet",
    "ServiceReport",
    "ServiceSpec",
    "ServingPolicy",
    "SkyService",
    "make_balancer",
    "load_entry_point_plugins",
    "llama2_70b_profile",
    "opt_6_7b_profile",
    "vicuna_13b_profile",
]
