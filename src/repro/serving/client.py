"""Workload replay client.

Replays a :class:`~repro.workloads.request.Workload` against a service,
reproducing the §5.1 client behaviour:

* every request has a hard timeout (100 s for Llama-2-70B, 20 s for
  OPT-6.7B); a request that has not completed by its deadline counts as
  a *failure* (timeouts capture both queueing overload and downtime);
* when no replica is ready — or admission control sheds the request —
  the client retries until the deadline, either at a fixed interval
  (the legacy behaviour) or with seeded jittered exponential backoff
  when a :class:`RetryPolicy` is attached;
* when a replica is preempted mid-request, the client resends the
  request to another replica immediately, and the lost time stays inside
  the end-to-end latency ("all requests that fail due to spot preemption
  will be retried by the client, with the failure time included");
* the measured latency includes the WAN round trip to whichever region
  served the request;
* time-to-first-token (TTFT, the §3.1 footnote's metric) is recorded
  separately: queueing + prefill on the replica plus the WAN round
  trip — the quantity §6's locality-aware routing optimises.  TTFT and
  time-per-output-token (TPOT) samples are also fed back to the
  controller as the SLO-aware autoscaler's violation signal.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.serving.controller import ServiceController
from repro.serving.replica import Replica
from repro.sim.metrics import Counter, LatencyRecorder, LatencySummary
from repro.telemetry.spans import SpanRecorder
from repro.workloads.request import Request, Workload

__all__ = ["ClientStats", "RetryPolicy", "ServiceClient"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for client retries.

    The n-th backoff for one request sleeps
    ``min(base * multiplier**n, cap)`` seconds, scaled by a uniform
    jitter draw from ``[1 - jitter, 1 + jitter]`` (seeded through the
    client's RNG stream, so replays are deterministic).  Retries after a
    replica *abort* (preemption) stay immediate — backoff applies to
    capacity signals: no ready replica, or a shed by admission control.
    """

    base: float = 2.0
    multiplier: float = 2.0
    cap: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.cap < self.base:
            raise ValueError("cap must be >= base")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter outside [0, 1)")

    def delay(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        raw = min(self.base * self.multiplier**attempt, self.cap)
        if rng is not None and self.jitter > 0:
            raw *= float(rng.uniform(1 - self.jitter, 1 + self.jitter))
        return raw


@dataclass(frozen=True)
class ClientStats:
    """Aggregate client-side results of one replay."""

    total_requests: int
    completed: int
    failed: int
    retries: int
    latency: LatencySummary | None
    ttft: LatencySummary | None
    #: Admission-control rejections observed (each is also a retry).
    shed: int = 0

    @property
    def failure_rate(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.failed / self.total_requests


class ServiceClient:
    """Replays a workload through a service controller."""

    def __init__(
        self,
        controller: ServiceController,
        workload: Workload,
        *,
        client_region: str = "aws:us-west-2",
        retry_interval: float = 2.0,
        backoff: Optional[RetryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        self.controller = controller
        self.engine = controller.engine
        self.workload = workload
        self.client_region = client_region
        self.retry_interval = retry_interval
        self.backoff = backoff
        self._rng = rng
        self.timeout = controller.spec.request_timeout
        self.latencies = LatencyRecorder()
        self.ttfts = LatencyRecorder("ttft")
        self.failures = Counter("failed_requests")
        self.retries = Counter("request_retries")
        self.sheds = Counter("request_sheds")
        #: Per-request span breakdown (queue/prefill/decode/wan legs);
        #: spans publish onto the engine's telemetry bus when enabled.
        self.spans = SpanRecorder(bus=self.engine.telemetry)
        self._completed: set[int] = set()
        self._failed: set[int] = set()
        self._ttft_seen: set[int] = set()
        #: Backoff count per request id (capacity retries only).
        self._backoffs: dict[int, int] = {}
        self._scheduled = False

    def start(self) -> None:
        """Schedule every workload arrival.  Call once before running."""
        if self._scheduled:
            raise RuntimeError("client already started")
        self._scheduled = True
        for request in self.workload:
            self.engine.call_at(
                request.arrival_time, lambda r=request: self._arrive(r)
            )

    # ------------------------------------------------------------------
    # Per-request state machine
    # ------------------------------------------------------------------
    def _arrive(self, request: Request) -> None:
        deadline = request.arrival_time + self.timeout
        self.spans.open(request.request_id, request.arrival_time)
        self.engine.call_at(deadline, lambda: self._deadline(request))
        self._attempt(request, deadline)

    def _deadline(self, request: Request) -> None:
        if request.request_id in self._completed:
            return
        self._failed.add(request.request_id)
        self.failures.add()
        self._backoffs.pop(request.request_id, None)
        self.spans.fail(request.request_id, self.engine.now)
        logger.debug(
            "t=%.1f request %d timed out", self.engine.now, request.request_id
        )

    def _retry_later(self, request: Request, deadline: float) -> None:
        """Schedule the next attempt after a capacity signal (no ready
        replica, or shed by admission control)."""
        if self.backoff is None:
            delay = self.retry_interval
        else:
            attempt = self._backoffs.get(request.request_id, 0)
            self._backoffs[request.request_id] = attempt + 1
            delay = self.backoff.delay(attempt, self._rng)
        if self.engine.now + delay < deadline:
            self.engine.call_after(delay, lambda: self._attempt(request, deadline))

    def _attempt(self, request: Request, deadline: float) -> None:
        if request.request_id in self._failed or request.request_id in self._completed:
            return
        replica = self.controller.route(request)
        if replica is None:
            self._retry_later(request, deadline)
            return
        span = self.spans.get(request.request_id)
        if span is not None:
            span.note_attempt(replica.id, replica.zone_id)
        accepted = replica.handle(
            request,
            on_complete=lambda r, rep=replica: self._complete(r, rep),
            on_abort=lambda r: self._aborted(r, deadline),
            on_first_token=lambda r, rep=replica: self._first_token(r, rep),
            span=span,
        )
        if not accepted:
            # Shed by admission control: back off and try again.
            self.sheds.add()
            self.retries.add()
            self._retry_later(request, deadline)

    def _aborted(self, request: Request, deadline: float) -> None:
        """Replica died (preemption or scale-down): client retries."""
        if request.request_id in self._failed or request.request_id in self._completed:
            return
        self.retries.add()
        span = self.spans.get(request.request_id)
        if span is not None:
            span.note_abort()
        self._attempt(request, deadline)

    def _first_token(self, request: Request, replica: Replica) -> None:
        """Record TTFT for the *first successful* attempt that streams a
        token back; retried requests keep their earliest-token time."""
        if request.request_id in self._failed or request.request_id in self._ttft_seen:
            return
        rtt = self.controller.network.rtt(self.client_region, replica.region_id)
        self._ttft_seen.add(request.request_id)
        ttft = self.engine.now + rtt - request.arrival_time
        self.ttfts.record(ttft)
        self.controller.note_slo_ttft(ttft)

    def _complete(self, request: Request, replica: Replica) -> None:
        if request.request_id in self._completed:
            return
        rtt = self.controller.network.rtt(self.client_region, replica.region_id)
        finish = self.engine.now + rtt
        latency = finish - request.arrival_time
        if request.request_id in self._failed or latency > self.timeout:
            # Completed after its deadline: already (or now) a failure.
            if request.request_id not in self._failed:
                self._failed.add(request.request_id)
                self.failures.add()
                self.spans.fail(request.request_id, self.engine.now)
            return
        self._completed.add(request.request_id)
        self._backoffs.pop(request.request_id, None)
        self.latencies.record(latency)
        # engine.now is the server-side completion; the span adds the
        # WAN return trip as its own leg, so span.total == latency (up
        # to float rounding).
        span = self.spans.get(request.request_id)
        if (
            span is not None
            and span.first_token is not None
            and request.output_tokens > 0
        ):
            decode = self.engine.now - span.first_token
            self.controller.note_slo_tpot(decode / request.output_tokens)
        self.spans.complete(request.request_id, self.engine.now, rtt)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def stats(self) -> ClientStats:
        return ClientStats(
            total_requests=len(self.workload),
            completed=len(self._completed),
            failed=len(self._failed),
            retries=int(self.retries.value),
            latency=self.latencies.summary(),
            ttft=self.ttfts.summary(),
            shed=int(self.sheds.value),
        )
