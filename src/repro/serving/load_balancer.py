"""Load balancers (§4, "Load Balancer").

The system load balancer distributes incoming traffic over ready
replicas.  The paper ships round-robin and least-ongoing-requests
routing, and sketches a locality-aware extension in §6 (route to the
closest replica unless it is overloaded); all three are implemented
here.  The balancer also feeds request-rate measurements to the
autoscaler — in this codebase that wiring lives in the service
controller, which calls :meth:`LoadBalancer.pick` per request.
"""

from __future__ import annotations

import abc
import logging
from typing import Optional, Sequence

from repro.cloud.network import NetworkModel
from repro.serving.replica import Replica
from repro.workloads.request import Request

__all__ = [
    "LeastLoadBalancer",
    "LoadBalancer",
    "LocalityAwareBalancer",
    "RoundRobinBalancer",
    "make_balancer",
]

logger = logging.getLogger(__name__)


class LoadBalancer(abc.ABC):
    """Chooses a ready replica for each incoming request."""

    name: str = "balancer"

    @abc.abstractmethod
    def pick(self, replicas: Sequence[Replica], request: Request) -> Optional[Replica]:
        """Pick a replica from ``replicas`` (all ready), or ``None`` if
        the list is empty."""


class RoundRobinBalancer(LoadBalancer):
    """Cycle through ready replicas in id order.

    The rotation is keyed by the *id* of the last-picked replica, not a
    positional cursor: each pick takes the smallest id strictly greater
    than the last one (wrapping to the smallest overall).  That makes
    the rotation stable when the ready set changes between picks —
    replicas joining or leaving never shift which replica is "next" the
    way a modulo cursor aliases — and runs in one O(n) pass instead of
    re-sorting the ready set per request.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def pick(self, replicas: Sequence[Replica], request: Request) -> Optional[Replica]:
        if not replicas:
            return None
        successor: Optional[Replica] = None  # smallest id > self._last
        smallest: Optional[Replica] = None  # smallest id overall (wrap)
        for replica in replicas:
            if smallest is None or replica.id < smallest.id:
                smallest = replica
            if self._last is not None and replica.id > self._last:
                if successor is None or replica.id < successor.id:
                    successor = replica
        choice = successor if successor is not None else smallest
        assert choice is not None
        self._last = choice.id
        return choice


class LeastLoadBalancer(LoadBalancer):
    """Route to the replica with the fewest ongoing requests (§4's
    "least number of ongoing requests" option, the SkyServe default).

    Load is normalised by each replica's ``capacity_weight``, so in a
    heterogeneous fleet an H100 replica (high weight) absorbs
    proportionally more concurrent requests than an L4 one.  In a
    homogeneous fleet every weight is exactly 1.0 and the division is
    exact, so picks are identical to the unweighted balancer.
    """

    name = "least_load"

    def pick(self, replicas: Sequence[Replica], request: Request) -> Optional[Replica]:
        if not replicas:
            return None
        return min(
            replicas,
            key=lambda r: (r.ongoing_requests / r.capacity_weight, r.id),
        )


class LocalityAwareBalancer(LoadBalancer):
    """§6's advanced policy: prefer replicas near the client.

    Replicas are bucketed by round-trip time from ``client_region``;
    within the nearest bucket whose replicas are not overloaded (ongoing
    requests below ``overload_threshold``), pick the least loaded.  When
    every bucket is overloaded, fall back to the globally least-loaded
    replica — the "route to a remote region only if local replicas are
    overloaded" behaviour.
    """

    name = "locality"

    def __init__(
        self,
        client_region: str,
        network: NetworkModel,
        *,
        overload_threshold: int = 8,
    ) -> None:
        if overload_threshold < 1:
            raise ValueError("overload_threshold must be >= 1")
        self.client_region = client_region
        self.network = network
        self.overload_threshold = overload_threshold
        #: Cumulative global fallbacks (every local replica overloaded).
        self.fallbacks_total = 0
        #: Set by ``pick`` when its last decision was a fallback — the
        #: controller reads this to emit a LoadBalancerFallback event.
        self.last_pick_fallback = False

    #: RTT assumed for replicas whose region the network model cannot
    #: place (synthetic topologies): worse than any modelled WAN bucket,
    #: so unplaceable replicas deterministically sort last.
    FALLBACK_RTT = 1.0

    def _rtt_to(self, replica: Replica) -> float:
        try:
            return self.network.rtt(self.client_region, replica.region_id)
        except (KeyError, ValueError):
            return self.FALLBACK_RTT

    def pick(self, replicas: Sequence[Replica], request: Request) -> Optional[Replica]:
        if not replicas:
            return None
        # Nearest RTT bucket containing a non-overloaded replica, then
        # least-loaded within that bucket (ties broken by id).  One pass:
        # min over non-overloaded replicas of (rtt, normalised load, id).
        # Both the overload cutoff and the load key are capacity-
        # weighted: a weight-2 replica overloads at twice the threshold
        # and counts half the load per request.  At weight 1.0 the
        # arithmetic is exact and matches the unweighted balancer.
        self.last_pick_fallback = False
        best: Optional[Replica] = None
        best_key: tuple[float, float, int] = (float("inf"), 0.0, 0)
        for replica in replicas:
            load = replica.ongoing_requests
            weight = replica.capacity_weight
            if load >= self.overload_threshold * weight:
                continue
            key = (self._rtt_to(replica), load / weight, replica.id)
            if best is None or key < best_key:
                best, best_key = replica, key
        if best is not None:
            return best
        logger.debug(
            "request %d: every replica at/over %d ongoing, falling back to "
            "globally least loaded",
            request.request_id,
            self.overload_threshold,
        )
        self.fallbacks_total += 1
        self.last_pick_fallback = True
        return min(
            replicas,
            key=lambda r: (r.ongoing_requests / r.capacity_weight, r.id),
        )


def make_balancer(
    policy: str,
    *,
    client_region: str = "aws:us-west-2",
    network: Optional[NetworkModel] = None,
) -> LoadBalancer:
    """Instantiate a balancer from a service spec policy name.

    Resolution goes through :data:`repro.serving.registry.BALANCERS`;
    registered factories take ``(client_region, network)`` and return a
    :class:`LoadBalancer`.
    """
    from repro.serving.registry import BALANCERS

    factory = BALANCERS.get(policy)
    balancer: LoadBalancer = factory(client_region, network)
    return balancer


def _make_round_robin(
    client_region: str, network: Optional[NetworkModel]
) -> LoadBalancer:
    return RoundRobinBalancer()


def _make_least_load(
    client_region: str, network: Optional[NetworkModel]
) -> LoadBalancer:
    return LeastLoadBalancer()


def _make_locality(client_region: str, network: Optional[NetworkModel]) -> LoadBalancer:
    if network is None:
        raise ValueError("locality balancer requires a network model")
    return LocalityAwareBalancer(client_region, network)


from repro.serving.registry import BALANCERS as _BALANCERS  # noqa: E402

_BALANCERS.register("round_robin", _make_round_robin)
_BALANCERS.register("least_load", _make_least_load)
_BALANCERS.register("locality", _make_locality)
