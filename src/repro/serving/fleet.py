"""Multi-service fleets: several services on one shared cloud.

The real SkyServe manages many services per account (``sky serve
status`` lists them); their spot replicas compete for the *same*
per-zone capacity.  :class:`ServiceFleet` wires multiple
controller+client pairs onto one :class:`~repro.cloud.provider.SimCloud`
and one engine, so capacity contention, correlated preemptions, and the
shared bill are modelled faithfully.

Contention matters: when two services chase the same scarce zone, one
service's launches consume the capacity the other's placer believed was
free — exactly the multi-tenant dynamics a single-service simulation
hides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloud.catalog import Catalog
from repro.cloud.network import NetworkModel, default_network
from repro.cloud.provider import CloudConfig, SimCloud
from repro.cloud.topology import Topology
from repro.cloud.traces import SpotTrace
from repro.serving.client import ServiceClient
from repro.serving.controller import ServiceController
from repro.serving.inference import ModelProfile, llama2_70b_profile
from repro.serving.policy import ServingPolicy
from repro.serving.service import ServiceReport
from repro.serving.spec import ServiceSpec
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry
from repro.telemetry.events import EventBus
from repro.workloads.request import Workload

__all__ = ["FleetService", "ServiceFleet"]


@dataclass
class FleetService:
    """One deployed service inside a fleet."""

    name: str
    spec: ServiceSpec
    controller: ServiceController
    client: Optional[ServiceClient] = None

    def report(self, duration: float) -> ServiceReport:
        if self.client is None:
            raise RuntimeError(f"service {self.name!r} has no workload attached")
        stats = self.client.stats()
        n_tar = self.controller.autoscaler.n_tar
        return ServiceReport(
            system=self.name,
            duration=duration,
            total_requests=stats.total_requests,
            completed=stats.completed,
            failed=stats.failed,
            failure_rate=stats.failure_rate,
            latency=stats.latency,
            ttft=stats.ttft,
            latency_samples=tuple(self.client.latencies.samples),
            spot_cost=0.0,  # per-service cost split computed by the fleet
            od_cost=0.0,
            availability=self.controller.ready_total_series.fraction_at_least(
                max(n_tar, 1), 0.0, duration
            ),
            preemptions=int(self.controller.preemption_count.value),
            launch_failures=int(self.controller.launch_failure_count.value),
        )


class ServiceFleet:
    """Deploy and run several services against one shared cloud."""

    def __init__(
        self,
        trace: SpotTrace,
        *,
        topology: Optional[Topology] = None,
        catalog: Optional[Catalog] = None,
        cloud_config: Optional[CloudConfig] = None,
        network: Optional[NetworkModel] = None,
        seed: int = 0,
        telemetry: Optional[EventBus] = None,
    ) -> None:
        self.engine = SimulationEngine(telemetry=telemetry)
        self.rng = RngRegistry(seed)
        self.network = network or default_network()
        self.cloud = SimCloud(
            self.engine,
            trace,
            topology=topology,
            catalog=catalog,
            config=cloud_config,
            rng=self.rng,
        )
        self.services: dict[str, FleetService] = {}
        self._running = False

    def deploy(
        self,
        spec: ServiceSpec,
        policy: ServingPolicy,
        *,
        profile: Optional[ModelProfile] = None,
        workload: Optional[Workload] = None,
        client_region: str = "aws:us-west-2",
    ) -> FleetService:
        """Add a service to the fleet (before :meth:`run`)."""
        if self._running:
            raise RuntimeError("fleet already running")
        if spec.name in self.services:
            raise ValueError(f"duplicate service name {spec.name!r}")
        controller = ServiceController(
            self.engine,
            self.cloud,
            spec,
            policy,
            profile or llama2_70b_profile(),
            network=self.network,
            rng=self.rng.stream(f"inference:{spec.name}"),
            client_region=client_region,
        )
        service = FleetService(name=spec.name, spec=spec, controller=controller)
        if workload is not None:
            service.client = ServiceClient(
                controller, workload, client_region=client_region
            )
        self.services[spec.name] = service
        return service

    def run(self, duration: float) -> dict[str, ServiceReport]:
        """Start every service and run the shared clock to ``duration``."""
        if not self.services:
            raise RuntimeError("fleet has no services")
        self._running = True
        for service in self.services.values():
            service.controller.start()
            if service.client is not None:
                service.client.start()
        self.engine.run_until(duration)
        reports = {}
        for name, service in self.services.items():
            if service.client is not None:
                reports[name] = service.report(duration)
        return reports

    def status(self) -> dict[str, list[dict[str, object]]]:
        """`sky serve status` across the whole fleet."""
        return {name: s.controller.status() for name, s in self.services.items()}

    def total_cost(self) -> float:
        """The shared account bill across all services."""
        return self.cloud.billing.total(self.engine.now)
