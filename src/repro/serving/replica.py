"""Model replicas.

A :class:`Replica` is the serving unit: one model endpoint backed by one
or more cloud instances (Fig. 2).  The single-instance case covers the
Llama-2-70B and OPT-6.7B experiments; the multi-worker case models
distributed inference where a replica is partitioned over several
instances in the *same zone* (§4, "Support for distributed inference").

A multi-worker replica dies entirely when any worker is preempted —
unless ``adaptive_parallelism`` is on (the SpotServe behaviour), in which
case it re-parallelises over the survivors after a migration pause and
keeps serving at proportionally reduced throughput.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

import numpy as np

from repro.cloud.instance import Instance, InstanceState
from repro.serving.inference import InferenceServer, ModelProfile
from repro.sim.engine import SimulationEngine
from repro.telemetry.events import RequestShed
from repro.telemetry.spans import RequestSpan
from repro.workloads.request import Request

__all__ = ["Replica", "ReplicaState"]

_replica_ids = itertools.count(1)


class ReplicaState(enum.Enum):
    """Replica-level lifecycle, aggregated over the worker instances."""

    PROVISIONING = "provisioning"
    INITIALIZING = "initializing"
    READY = "ready"
    MIGRATING = "migrating"  # SpotServe re-parallelisation pause
    DEAD = "dead"


class Replica:
    """One model endpoint over ``workers`` cloud instances."""

    def __init__(
        self,
        engine: SimulationEngine,
        profile: ModelProfile,
        *,
        zone_id: str,
        spot: bool,
        rng: Optional[np.random.Generator] = None,
        adaptive_parallelism: bool = False,
        migration_pause: float = 30.0,
        replica_id: Optional[int] = None,
        max_queue: Optional[int] = None,
        capacity_weight: float = 1.0,
    ) -> None:
        # The controller passes its own per-service counter so replica
        # ids (and hence telemetry event streams) are reproducible
        # run-to-run within one process; the module-global counter only
        # backs directly constructed replicas.
        if capacity_weight <= 0:
            raise ValueError("capacity_weight must be positive")
        self.id = replica_id if replica_id is not None else next(_replica_ids)
        self.engine = engine
        self.profile = profile
        self.zone_id = zone_id
        self.spot = spot
        #: Serving capacity in reference-replica units (1.0 = the
        #: service's reference GPU).  Capacity-weighted balancers
        #: normalise ongoing load by this, so an H100 replica absorbs
        #: proportionally more traffic than an L4 one.
        self.capacity_weight = capacity_weight
        self.adaptive_parallelism = adaptive_parallelism
        self.migration_pause = migration_pause
        self.workers: list[Instance] = []
        self._initial_workers = 0
        self.server = InferenceServer(engine, profile, rng=rng, max_queue=max_queue)
        self.state = ReplicaState.PROVISIONING
        self.ready_at: Optional[float] = None
        self.died_at: Optional[float] = None
        #: Set by the controller when the replica is being scaled down:
        #: it finishes ongoing requests but receives no new traffic.
        self.draining = False
        #: Set when a preemption warning arrived: the replica keeps
        #: serving until the cloud reclaims it, but the controller
        #: launches its replacement immediately.
        self.doomed = False

    @property
    def region_id(self) -> str:
        """The replica's ``cloud:region`` id.

        Zone ids normally follow ``cloud:region:zone``; synthetic traces
        use free-form ids ("z1"), for which the zone id doubles as the
        region id instead of raising.
        """
        parts = self.zone_id.rsplit(":", 1)
        return parts[0] if len(parts) == 2 else self.zone_id

    @property
    def is_ready(self) -> bool:
        return self.state is ReplicaState.READY

    @property
    def ongoing_requests(self) -> int:
        return self.server.ongoing

    @property
    def executing_requests(self) -> int:
        """Batch occupancy: requests holding an inference slot."""
        return self.server.executing

    @property
    def queue_depth(self) -> int:
        """Requests waiting in the server-side FIFO queue."""
        return self.server.queue_depth

    @property
    def shed_count(self) -> int:
        """Cumulative admission-control rejections on this replica."""
        return self.server.shed_count

    # ------------------------------------------------------------------
    # Worker management (driven by the controller)
    # ------------------------------------------------------------------
    def attach_worker(self, instance: Instance) -> None:
        if instance.zone_id != self.zone_id:
            raise ValueError(
                f"replica {self.id} in {self.zone_id} cannot attach a worker "
                f"in {instance.zone_id}: workers of one replica share a zone"
            )
        self.workers.append(instance)
        self._initial_workers = max(self._initial_workers, len(self.workers))

    def worker_ready(self, instance: Instance) -> bool:
        """Note a worker reaching READY.  Returns True when the whole
        replica just became ready (all workers up)."""
        if self.state is ReplicaState.DEAD:
            return False
        if all(w.state is InstanceState.READY for w in self.workers):
            became_ready = self.state is not ReplicaState.READY
            self.state = ReplicaState.READY
            if became_ready:
                self.ready_at = self.engine.now
            return became_ready
        self.state = ReplicaState.INITIALIZING
        return False

    def worker_lost(self, instance: Instance) -> None:
        """A worker was preempted or failed to launch.

        Without adaptive parallelism (or when the last worker is gone)
        the replica dies and aborts its in-flight requests; with it, the
        replica pauses for ``migration_pause`` and resumes degraded.
        """
        if instance in self.workers:
            self.workers.remove(instance)
        if self.state is ReplicaState.DEAD:
            return
        survivors = [w for w in self.workers if w.state.is_alive]
        if not survivors or not self.adaptive_parallelism:
            self.kill()
            return
        if self.state is not ReplicaState.READY:
            # Lost a worker while still coming up: cannot re-parallelise
            # a model that never loaded.
            self.kill()
            return
        self.state = ReplicaState.MIGRATING
        slowdown = self._initial_workers / len(survivors)
        self.server.set_slowdown(max(slowdown, 1.0))
        self.engine.call_after(self.migration_pause, self._migration_done)

    def _migration_done(self) -> None:
        if self.state is ReplicaState.MIGRATING:
            self.state = ReplicaState.READY

    def kill(self) -> None:
        """Tear the replica down, aborting all of its requests."""
        if self.state is ReplicaState.DEAD:
            return
        self.state = ReplicaState.DEAD
        self.died_at = self.engine.now
        self.server.abort_all()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def handle(
        self,
        request: Request,
        on_complete: Callable[[Request], None],
        on_abort: Callable[[Request], None],
        on_first_token: Optional[Callable[[Request], None]] = None,
        *,
        span: Optional[RequestSpan] = None,
        urgent: bool = False,
    ) -> bool:
        """Accept a routed request.  Only valid on a ready replica.

        Returns ``False`` when admission control shed the request (no
        callback fires; the client retries with backoff).  Requests
        landing on a non-ready replica are aborted, which counts as
        accepted (``on_abort`` fired).  ``urgent`` bypasses the queue
        bound — readiness probes must reach an overloaded replica.
        """
        if self.state not in (ReplicaState.READY, ReplicaState.MIGRATING):
            on_abort(request)
            return True
        accepted = self.server.submit(
            request, on_complete, on_abort, on_first_token, span=span, urgent=urgent
        )
        if not accepted:
            bus = self.engine.telemetry
            if bus.enabled:
                bus.emit(
                    RequestShed(
                        time=self.engine.now,
                        request_id=request.request_id,
                        replica_id=self.id,
                        zone=self.zone_id,
                        queue_depth=self.server.queue_depth,
                    )
                )
        return accepted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "spot" if self.spot else "od"
        return f"Replica(id={self.id}, {kind} @ {self.zone_id}, {self.state.value})"
