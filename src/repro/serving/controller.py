"""Service controller (§4, Fig. 8).

The controller owns the replica life cycle: it launches spot and
on-demand replicas where the policy tells it to, watches readiness,
reacts to preemptions and launch failures, gracefully drains surplus
replicas, and exposes the ready set to the load balancer.  It runs a
reconciliation loop every ``reconcile_interval`` seconds plus an
immediate pass after every lifecycle event, mirroring SkyServe's
controller + readiness-probe design.

Policy/mechanism split: all decisions about *how many* and *where* come
from the attached :class:`~repro.serving.policy.ServingPolicy`
(SpotHedge or a baseline); the controller only executes them.
"""

from __future__ import annotations

import itertools
import logging
from typing import Optional

import numpy as np

from repro.cloud.gpus import capacity_weight, is_pool, pool_zone, split_pool
from repro.cloud.instance import Instance, InstanceCallbacks
from repro.cloud.network import NetworkModel, default_network
from repro.cloud.provider import SimCloud
from repro.serving.autoscaler import Autoscaler
from repro.serving.inference import ModelProfile, scale_profile_for_accelerator
from repro.serving.load_balancer import LoadBalancer, make_balancer
from repro.serving.policy import MixTarget, Observation, ServingPolicy
from repro.serving.replica import Replica, ReplicaState
from repro.serving.spec import ServiceSpec
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import Counter, TimeSeries
from repro.telemetry.events import (
    AutoscaleDecision,
    AutoscalerSample,
    FleetSample,
    LoadBalancerFallback,
    PreemptWarning,
    ProbeFailure,
    ReplicaLaunch,
    ReplicaLaunchFailed,
    ReplicaLoadSample,
    ReplicaPreempted,
    ReplicaReady,
    ReplicaTerminated,
    RouteDecision,
)
from repro.workloads.request import Request

__all__ = ["ServiceController"]

logger = logging.getLogger(__name__)

# Safety valve for policies that do not count in-flight launches
# (MArk/AWSSpot): never hold more than this many times the target in
# alive spot replicas.  Fig. 12 observes ~14 provisioning replicas for a
# target of 4, i.e. a factor of ~3.5.
_MAX_OVERREQUEST_FACTOR = 4


class ServiceController:
    """Executes a serving policy against the simulated cloud."""

    def __init__(
        self,
        engine: SimulationEngine,
        cloud: SimCloud,
        spec: ServiceSpec,
        policy: ServingPolicy,
        profile: ModelProfile,
        *,
        network: Optional[NetworkModel] = None,
        balancer: Optional[LoadBalancer] = None,
        rng: Optional[np.random.Generator] = None,
        reconcile_interval: float = 10.0,
        client_region: str = "aws:us-west-2",
        adaptive_parallelism: bool = False,
        probe_interval: Optional[float] = None,
        probe_timeout: float = 30.0,
    ) -> None:
        self.engine = engine
        self.cloud = cloud
        self.spec = spec
        self.policy = policy
        self.profile = profile
        self.network = network or default_network()
        self.balancer = balancer or make_balancer(
            spec.load_balancing_policy,
            client_region=client_region,
            network=self.network,
        )
        self._rng = rng
        self.reconcile_interval = reconcile_interval
        self.autoscaler = Autoscaler(
            spec.replica_policy, initial_target=spec.replica_policy.min_replicas
        )
        self.replicas: list[Replica] = []
        self._replica_ids = itertools.count(1)
        self._instance_replica: dict[int, Replica] = {}
        self._adaptive_parallelism = adaptive_parallelism

        # Zones usable for spot must be covered by the capacity trace.
        allowed = spec.resources.allowed_zones(cloud.topology)
        self.spot_zones = [z.id for z in allowed if z.id in cloud.trace.zone_ids]
        self.od_zones = [z.id for z in allowed]
        # Heterogeneous traces carry (zone, instance-type) pool rows
        # ("zone@itype", repro.cloud.gpus): a pool is usable for spot
        # when its base zone is allowed.  Pool order follows the trace
        # so placement sees a deterministic pool list.
        allowed_ids = {z.id for z in allowed}
        self.spot_zones += [
            trace_id
            for trace_id in cloud.trace.zone_ids
            if is_pool(trace_id) and pool_zone(trace_id) in allowed_ids
        ]
        if not self.od_zones:
            raise ValueError("service spec allows no zones in this topology")
        self._zone_itype = self._resolve_instance_types()
        self._zone_profile, self._zone_weight = self._resolve_serving_profiles()

        # Metrics (Fig. 10 ready-replica timelines, Fig. 12 provisioning
        # counts, availability windows).
        self.ready_spot_series = TimeSeries("ready_spot")
        self.ready_od_series = TimeSeries("ready_od")
        self.ready_total_series = TimeSeries("ready_total")
        self.provisioning_spot_series = TimeSeries("provisioning_spot")
        self.n_tar_series = TimeSeries("n_tar")
        self.preemption_count = Counter("replica_preemptions")
        self.launch_failure_count = Counter("replica_launch_failures")
        # Zones with a recent capacity error are excluded from placement
        # until the cooldown expires (real failover does not hammer a
        # zone that just returned InsufficientCapacity).
        self._zone_cooldown: dict[str, float] = {}
        self.zone_failure_cooldown = 2.0 * cloud.config.failure_detect_delay
        # Readiness probing (SS4): periodically run a tiny compute
        # workload on every ready replica; replicas that do not answer
        # within probe_timeout are replaced.  None disables probing.
        if probe_interval is not None and probe_interval <= 0:
            raise ValueError("probe_interval must be positive when set")
        if probe_timeout <= 0:
            raise ValueError("probe_timeout must be positive")
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_failure_count = Counter("probe_failures")
        self._probe_ids = -1  # probe requests use negative ids
        self._started = False

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _resolve_instance_types(self) -> dict[str, str]:
        """Pick, per zone, the cheapest instance type (by spot price)
        carrying the requested accelerator in that zone's cloud.  Pool
        ids carry their instance type explicitly and resolve to it."""
        accelerator = self.spec.resources.accelerator
        by_cloud: dict[str, str] = {}
        for itype in self.cloud.catalog.with_accelerator(accelerator):
            best = by_cloud.get(itype.cloud)
            if best is None or itype.spot_hourly < self.cloud.catalog.get(best).spot_hourly:
                by_cloud[itype.cloud] = itype.name
        mapping: dict[str, str] = {}
        for zone_id in self.od_zones:
            cloud_name = zone_id.split(":")[0]
            if cloud_name in by_cloud:
                mapping[zone_id] = by_cloud[cloud_name]
        for zone_id in self.spot_zones:
            _base, itype_name = split_pool(zone_id)
            if itype_name is None:
                continue
            itype = self.cloud.catalog.get(itype_name)
            if itype.accelerator is None:
                raise ValueError(
                    f"pool {zone_id!r}: instance type {itype_name!r} "
                    "carries no accelerator"
                )
            mapping[zone_id] = itype_name
        if not mapping:
            raise ValueError(
                f"no instance type with accelerator {accelerator!r} "
                "available in any allowed zone"
            )
        # Zones whose cloud lacks the accelerator are unusable; drop them.
        self.spot_zones = [z for z in self.spot_zones if z in mapping]
        self.od_zones = [z for z in self.od_zones if z in mapping]
        return mapping

    def _resolve_serving_profiles(
        self,
    ) -> tuple[dict[str, ModelProfile], dict[str, float]]:
        """Per-zone model profile and capacity weight.

        Zones running the service's reference accelerator share the
        *same* profile object and weight 1.0 (the homogeneous path is
        untouched); pools on other GPU classes get decode timing scaled
        by the class throughput ratio and a matching capacity weight for
        the balancers (repro.cloud.gpus)."""
        reference = self.spec.resources.accelerator
        profiles: dict[str, ModelProfile] = {}
        weights: dict[str, float] = {}
        for zone_id, itype_name in self._zone_itype.items():
            accelerator = self.cloud.catalog.get(itype_name).accelerator
            if accelerator is None or accelerator == reference:
                profiles[zone_id] = self.profile
                weights[zone_id] = 1.0
            else:
                profiles[zone_id] = scale_profile_for_accelerator(
                    self.profile, accelerator, reference=reference
                )
                weights[zone_id] = capacity_weight(accelerator, reference)
        return profiles, weights

    def start(self) -> None:
        """Begin the reconciliation loop.  Call once, before running."""
        if self._started:
            raise RuntimeError("controller already started")
        self._started = True
        self._timers = [
            self.engine.call_after(0.0, self._tick),
            self.engine.call_every(self.reconcile_interval, self._tick),
        ]
        if self.probe_interval is not None:
            self._timers.append(
                self.engine.call_every(self.probe_interval, self._probe_all)
            )

    def stop(self) -> None:
        """Halt the reconciliation and probe loops (service teardown).
        Safe to call before start() or repeatedly."""
        self._stopped = True
        for timer in getattr(self, "_timers", []):
            timer.cancel()

    # ------------------------------------------------------------------
    # Observation and request routing
    # ------------------------------------------------------------------
    def _alive_replicas(self, spot: bool) -> list[Replica]:
        """Replicas that count toward the policy's targets: alive, not
        being scaled down, and not doomed by a preemption warning (a
        doomed replica still serves, but its replacement must launch
        now)."""
        return [
            r
            for r in self.replicas
            if r.spot == spot
            and r.state is not ReplicaState.DEAD
            and not r.draining
            and not r.doomed
        ]

    def _routable_replicas(self, spot: bool) -> list[Replica]:
        """Replicas the balancer may still send traffic to — includes
        doomed-but-alive ones riding out their warning grace."""
        return [
            r
            for r in self.replicas
            if r.spot == spot and r.is_ready and not r.draining
        ]

    def ready_replicas(self) -> list[Replica]:
        return [
            r
            for r in self.replicas
            if r.is_ready and not r.draining
        ]

    def observe(self) -> Observation:
        spot_alive = self._alive_replicas(spot=True)
        od_alive = self._alive_replicas(spot=False)
        by_zone: dict[str, int] = {}
        for replica in spot_alive:
            by_zone[replica.zone_id] = by_zone.get(replica.zone_id, 0) + 1
        return Observation(
            now=self.engine.now,
            n_tar=self.autoscaler.n_tar,
            spot_launched=len(spot_alive),
            spot_ready=sum(1 for r in spot_alive if r.is_ready),
            od_launched=len(od_alive),
            od_ready=sum(1 for r in od_alive if r.is_ready),
            spot_by_zone=by_zone,
        )

    def route(self, request: Request) -> Optional[Replica]:
        """Route one request; feeds the autoscaler's QPS window."""
        self.autoscaler.record_request(self.engine.now)
        replica = self.balancer.pick(self.ready_replicas(), request)
        bus = self.engine.telemetry
        if bus.enabled and replica is not None:
            bus.emit(
                RouteDecision(
                    time=self.engine.now,
                    request_id=request.request_id,
                    replica_id=replica.id,
                    zone=replica.zone_id,
                    balancer=type(self.balancer).__name__,
                    ongoing=replica.ongoing_requests,
                )
            )
            if getattr(self.balancer, "last_pick_fallback", False):
                bus.emit(
                    LoadBalancerFallback(
                        time=self.engine.now,
                        request_id=request.request_id,
                        replica_id=replica.id,
                        balancer=type(self.balancer).__name__,
                    )
                )
        return replica

    def note_slo_ttft(self, value: float) -> None:
        """Client-reported time-to-first-token sample (SLO signal)."""
        self.autoscaler.record_ttft(self.engine.now, value)

    def note_slo_tpot(self, value: float) -> None:
        """Client-reported time-per-output-token sample (SLO signal)."""
        self.autoscaler.record_tpot(self.engine.now, value)

    def status(self) -> list[dict[str, object]]:
        """A ``sky serve status``-style snapshot of every live replica."""
        rows = []
        for replica in self.replicas:
            state = replica.state.value
            if replica.draining:
                state += " (draining)"
            elif replica.doomed:
                state += " (preempt warned)"
            rows.append(
                {
                    "replica": replica.id,
                    "market": "spot" if replica.spot else "on-demand",
                    "zone": replica.zone_id,
                    "state": state,
                    "ongoing_requests": replica.ongoing_requests,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if getattr(self, "_stopped", False):
            return
        old_target = self.autoscaler.n_tar
        self.autoscaler.evaluate(self.engine.now)
        if self.autoscaler.n_tar != old_target:
            logger.info(
                "t=%.1f autoscale: N_Tar %d -> %d",
                self.engine.now,
                old_target,
                self.autoscaler.n_tar,
            )
            bus = self.engine.telemetry
            if bus.enabled:
                bus.emit(
                    AutoscaleDecision(
                        time=self.engine.now,
                        old_target=old_target,
                        new_target=self.autoscaler.n_tar,
                        request_rate=self.autoscaler.request_rate(self.engine.now),
                        mode=self.spec.replica_policy.autoscale_mode,
                        slo_violation_rate=self.autoscaler.slo_violation_rate(
                            self.engine.now
                        ),
                    )
                )
        self._reap_drained()
        obs = self.observe()
        mix = self.policy.target_mix(obs)
        self._reconcile_spot(obs, mix)
        self._reconcile_od(obs, mix)
        self._record_metrics()

    def _cooling_zones(self) -> frozenset[str]:
        now = self.engine.now
        self._zone_cooldown = {
            z: t for z, t in self._zone_cooldown.items() if t > now
        }
        return frozenset(self._zone_cooldown)

    def _policy_view(self, obs: Observation, mix: MixTarget) -> Observation:
        """The observation as the policy's worldview sees it.

        Policies that do not count in-flight launches (MArk, AWSSpot —
        built for fast CPU readiness) also do not see them in the
        per-zone placement counts; that blindness is what produces the
        Fig. 12 over-requesting.
        """
        if mix.count_provisioning_spot:
            return obs
        ready_by_zone: dict[str, int] = {}
        for replica in self._alive_replicas(spot=True):
            if replica.is_ready:
                ready_by_zone[replica.zone_id] = (
                    ready_by_zone.get(replica.zone_id, 0) + 1
                )
        return Observation(
            now=obs.now,
            n_tar=obs.n_tar,
            spot_launched=obs.spot_ready,
            spot_ready=obs.spot_ready,
            od_launched=obs.od_launched,
            od_ready=obs.od_ready,
            spot_by_zone=ready_by_zone,
        )

    def _reconcile_spot(self, obs: Observation, mix: MixTarget) -> None:
        alive = self._alive_replicas(spot=True)
        counted = (
            len(alive)
            if mix.count_provisioning_spot
            else sum(1 for r in alive if r.is_ready)
        )
        if counted < mix.spot_target:
            cap = max(
                mix.spot_target * _MAX_OVERREQUEST_FACTOR, mix.spot_target + 2
            )
            deficit = mix.spot_target - counted
            excluded = (
                self._cooling_zones()
                if self.policy.respects_zone_cooldown
                else frozenset()
            )
            for _ in range(deficit):
                if len(self._alive_replicas(spot=True)) >= cap:
                    break
                obs = self._policy_view(self.observe(), mix)
                zone = self.policy.select_spot_zone(obs, excluded)
                if zone is None:
                    break
                self._launch_replica(zone, spot=True)
        elif len(alive) > mix.spot_target:
            surplus = len(alive) - mix.spot_target
            for victim in self._scale_down_victims(alive, surplus):
                self._retire(victim)

    def _reconcile_od(self, obs: Observation, mix: MixTarget) -> None:
        alive = self._alive_replicas(spot=False)
        if len(alive) < mix.od_target:
            for _ in range(mix.od_target - len(alive)):
                obs = self.observe()
                zone = self.policy.select_od_zone(obs)
                if zone is None:
                    break
                self._launch_replica(zone, spot=False)
        elif len(alive) > mix.od_target:
            surplus = len(alive) - mix.od_target
            for victim in self._scale_down_victims(alive, surplus):
                self._retire(victim)

    @staticmethod
    def _scale_down_victims(alive: list[Replica], surplus: int) -> list[Replica]:
        """Pick replicas to remove: cancel still-launching ones first
        (cheapest to stop), then the youngest ready ones."""
        launching = [r for r in alive if not r.is_ready]
        ready = [r for r in alive if r.is_ready]
        ordered = launching + sorted(ready, key=lambda r: -(r.ready_at or 0.0))
        return ordered[:surplus]

    def _retire(self, replica: Replica) -> None:
        """Gracefully remove a replica: drain if serving, else kill now."""
        if replica.is_ready and replica.ongoing_requests > 0:
            replica.draining = True  # excluded from routing; reaped later
            return
        self._destroy(replica, reason="scale_down")

    def _reap_drained(self) -> None:
        for replica in list(self.replicas):
            if replica.draining and replica.ongoing_requests == 0:
                self._destroy(replica, reason="drained")

    def _destroy(self, replica: Replica, *, reason: str = "teardown") -> None:
        for worker in list(replica.workers):
            self.cloud.terminate(worker)
            self._instance_replica.pop(worker.id, None)
        replica.kill()
        if replica in self.replicas:
            self.replicas.remove(replica)
        logger.debug(
            "t=%.1f replica %d terminated (%s)", self.engine.now, replica.id, reason
        )
        bus = self.engine.telemetry
        if bus.enabled:
            bus.emit(
                ReplicaTerminated(
                    time=self.engine.now,
                    replica_id=replica.id,
                    zone=replica.zone_id,
                    spot=replica.spot,
                    reason=reason,
                )
            )

    # ------------------------------------------------------------------
    # Launch path and lifecycle callbacks
    # ------------------------------------------------------------------
    def _launch_replica(self, zone_id: str, *, spot: bool) -> Replica:
        if spot and zone_id not in self.spot_zones:
            raise ValueError(f"zone {zone_id!r} not enabled for spot launches")
        if not spot and zone_id not in self.od_zones:
            raise ValueError(f"zone {zone_id!r} not enabled for launches")
        replica = Replica(
            self.engine,
            self._zone_profile.get(zone_id, self.profile),
            zone_id=zone_id,
            spot=spot,
            rng=self._rng,
            adaptive_parallelism=self._adaptive_parallelism,
            replica_id=next(self._replica_ids),
            max_queue=self.spec.max_queue_per_replica,
            capacity_weight=self._zone_weight.get(zone_id, 1.0),
        )
        self.replicas.append(replica)
        itype = self._zone_itype[zone_id]
        callbacks = InstanceCallbacks(
            on_ready=self._on_instance_ready,
            on_preempted=self._on_instance_preempted,
            on_failed=self._on_instance_failed,
            on_preempt_warning=self._on_preempt_warning,
        )
        for _ in range(self.spec.resources.workers_per_replica):
            instance = self.cloud.request_instance(
                zone_id, itype, spot=spot, callbacks=callbacks
            )
            replica.attach_worker(instance)
            self._instance_replica[instance.id] = replica
        logger.debug(
            "t=%.1f launch replica %d in %s (%s)",
            self.engine.now,
            replica.id,
            zone_id,
            "spot" if spot else "on-demand",
        )
        bus = self.engine.telemetry
        if bus.enabled:
            bus.emit(
                ReplicaLaunch(
                    time=self.engine.now,
                    replica_id=replica.id,
                    zone=zone_id,
                    spot=spot,
                )
            )
        return replica

    def _on_instance_ready(self, instance: Instance) -> None:
        replica = self._instance_replica.get(instance.id)
        if replica is None or replica.state is ReplicaState.DEAD:
            self.cloud.terminate(instance)
            return
        became_ready = replica.worker_ready(instance)
        if became_ready:
            logger.debug(
                "t=%.1f replica %d ready in %s",
                self.engine.now,
                replica.id,
                replica.zone_id,
            )
            bus = self.engine.telemetry
            if bus.enabled:
                bus.emit(
                    ReplicaReady(
                        time=self.engine.now,
                        replica_id=replica.id,
                        zone=replica.zone_id,
                        spot=replica.spot,
                    )
                )
            if replica.spot:
                self._touch_audit()
                self.policy.on_spot_ready(replica.zone_id)
            self._after_event()

    def _on_instance_preempted(self, instance: Instance) -> None:
        replica = self._instance_replica.pop(instance.id, None)
        if replica is None:
            return
        was_alive = replica.state is not ReplicaState.DEAD
        replica.worker_lost(instance)
        if replica.state is ReplicaState.DEAD and was_alive:
            if replica in self.replicas:
                self.replicas.remove(replica)
            for worker in list(replica.workers):
                self.cloud.terminate(worker)
                self._instance_replica.pop(worker.id, None)
            self.preemption_count.add()
            logger.info(
                "t=%.1f replica %d preempted in %s (warned=%s)",
                self.engine.now,
                replica.id,
                replica.zone_id,
                instance.preempt_warned,
            )
            bus = self.engine.telemetry
            if bus.enabled:
                bus.emit(
                    ReplicaPreempted(
                        time=self.engine.now,
                        replica_id=replica.id,
                        zone=replica.zone_id,
                        spot=replica.spot,
                        warned=instance.preempt_warned,
                    )
                )
        if replica.spot and not instance.crashed:
            # A hardware fault says nothing about the zone's spot
            # market, so the placer is not penalised for it.
            self._touch_audit()
            self.policy.on_spot_preempted(replica.zone_id)
        self._after_event()

    def _on_preempt_warning(self, instance: Instance) -> None:
        """Best-effort preemption warning (§4, "Preemption handling").

        The doomed replica keeps serving its in-flight requests but
        receives no new traffic, the zone is marked as preempting so the
        replacement avoids it, and a reconcile launches the replacement
        immediately — shaving up to the warning period off the recovery.
        §2.3's caveat still holds: with ~180 s cold starts, a 30-120 s
        warning cannot eliminate the gap, only shorten it.
        """
        replica = self._instance_replica.get(instance.id)
        if replica is None or replica.state is ReplicaState.DEAD:
            return
        already_doomed = replica.doomed
        replica.doomed = True
        if not already_doomed:
            bus = self.engine.telemetry
            if bus.enabled:
                bus.emit(
                    PreemptWarning(
                        time=self.engine.now,
                        replica_id=replica.id,
                        zone=replica.zone_id,
                    )
                )
        if replica.spot:
            self._touch_audit()
            self.policy.on_spot_preempted(replica.zone_id)
        self._after_event()

    def _on_instance_failed(self, instance: Instance) -> None:
        replica = self._instance_replica.pop(instance.id, None)
        if replica is None:
            return
        was_alive = replica.state is not ReplicaState.DEAD
        replica.worker_lost(instance)
        if replica.state is ReplicaState.DEAD and was_alive:
            if replica in self.replicas:
                self.replicas.remove(replica)
            for worker in list(replica.workers):
                self.cloud.terminate(worker)
                self._instance_replica.pop(worker.id, None)
            self.launch_failure_count.add()
            logger.info(
                "t=%.1f replica %d launch failed in %s",
                self.engine.now,
                replica.id,
                replica.zone_id,
            )
            bus = self.engine.telemetry
            if bus.enabled:
                bus.emit(
                    ReplicaLaunchFailed(
                        time=self.engine.now,
                        replica_id=replica.id,
                        zone=replica.zone_id,
                        spot=replica.spot,
                    )
                )
        if replica.spot:
            self._zone_cooldown[replica.zone_id] = (
                self.engine.now + self.zone_failure_cooldown
            )
            self._touch_audit()
            self.policy.on_spot_launch_failed(replica.zone_id)
        self._after_event()

    # ------------------------------------------------------------------
    # Readiness probing (SS4)
    # ------------------------------------------------------------------
    def _probe_all(self) -> None:
        for replica in list(self.ready_replicas()):
            self._probe(replica)

    def _probe(self, replica: Replica) -> None:
        """Send one tiny compute request; replace the replica if it
        does not answer within the probe timeout."""
        self._probe_ids -= 1
        probe = Request(
            request_id=self._probe_ids,
            arrival_time=self.engine.now,
            input_tokens=1,
            output_tokens=1,
        )
        state = {"answered": False}

        def on_answer(_request: Request) -> None:
            state["answered"] = True

        replica.handle(probe, on_answer, on_answer, urgent=True)

        def check() -> None:
            if state["answered"] or replica.state is ReplicaState.DEAD:
                return
            self.probe_failure_count.add()
            logger.warning(
                "t=%.1f replica %d failed readiness probe in %s",
                self.engine.now,
                replica.id,
                replica.zone_id,
            )
            bus = self.engine.telemetry
            if bus.enabled:
                bus.emit(
                    ProbeFailure(
                        time=self.engine.now,
                        replica_id=replica.id,
                        zone=replica.zone_id,
                    )
                )
            self._destroy(replica, reason="probe_failure")
            self._after_event()

        self.engine.call_after(self.probe_timeout, check)

    def _after_event(self) -> None:
        """Reconcile promptly after a lifecycle event (not re-entrantly)."""
        self.engine.call_after(0.0, self._tick)

    def _touch_audit(self) -> None:
        """Advance the policy audit clock before a lifecycle callback.

        The ``on_spot_*`` notifications carry no :class:`Observation`, so
        without this the audit log would stamp Z_A/Z_P transitions with
        the time of the *previous* reconcile tick.
        """
        audit = self.policy.audit
        if audit is not None:
            audit.touch(self.engine.now)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record_metrics(self) -> None:
        now = self.engine.now
        spot_alive = self._alive_replicas(spot=True)
        od_alive = self._alive_replicas(spot=False)
        # Readiness counts include doomed-but-serving replicas: until
        # the cloud actually reclaims them they handle traffic.
        ready_spot = len(self._routable_replicas(spot=True))
        ready_od = len(self._routable_replicas(spot=False))
        self.ready_spot_series.record(now, ready_spot)
        self.ready_od_series.record(now, ready_od)
        self.ready_total_series.record(now, ready_spot + ready_od)
        self.provisioning_spot_series.record(
            now, sum(1 for r in spot_alive if not r.is_ready)
        )
        self.n_tar_series.record(now, self.autoscaler.n_tar)
        bus = self.engine.telemetry
        if bus.enabled:
            n_tar = self.autoscaler.n_tar
            bus.emit(FleetSample(now, ready_spot + ready_od, n_tar))
            bus.emit(
                AutoscalerSample(
                    time=now,
                    target=n_tar,
                    candidate=self.autoscaler.candidate_target(now),
                    request_rate=self.autoscaler.request_rate(now),
                    slo_violation_rate=self.autoscaler.slo_violation_rate(now),
                )
            )
            for replica in self.replicas:
                if not replica.is_ready:
                    continue
                bus.emit(
                    ReplicaLoadSample(
                        time=now,
                        replica_id=replica.id,
                        zone=replica.zone_id,
                        executing=replica.executing_requests,
                        queued=replica.queue_depth,
                        shed=replica.shed_count,
                    )
                )

    def availability(self, start: float, end: float, n_tar: Optional[int] = None) -> float:
        """Fraction of [start, end] with at least n_tar replicas ready."""
        threshold = n_tar if n_tar is not None else self.autoscaler.n_tar
        return self.ready_total_series.fraction_at_least(threshold, start, end)
