"""Service specification — the reproduction of Listing 1.

A :class:`ServiceSpec` describes everything a user submits to SkyServe:
the readiness probe, the replica policy (SpotHedge knobs:
``num_overprovision``, ``dynamic_ondemand_fallback``, ``spot_placer``,
``target_qps_per_replica``), and the resources stanza with its ``any_of``
failure-domain filters.  Specs round-trip through plain dictionaries, the
shape the YAML file in Listing 1 parses into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cloud.topology import Topology, Zone
from repro.serving.registry import AUTOSCALE_MODES, BALANCERS, PLACERS

__all__ = ["DomainFilter", "ReplicaPolicyConfig", "ResourceSpec", "ServiceSpec"]


@dataclass(frozen=True)
class DomainFilter:
    """One entry of the ``any_of`` list: enable a cloud, region, or zone."""

    cloud: Optional[str] = None
    region: Optional[str] = None
    zone: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cloud is None and self.region is None and self.zone is None:
            raise ValueError("empty any_of entry")
        if self.region is not None and self.cloud is None:
            raise ValueError("region filter requires a cloud")
        if self.zone is not None and (self.cloud is None or self.region is None):
            raise ValueError("zone filter requires cloud and region")

    def to_dict(self) -> dict[str, str]:
        out = {}
        if self.cloud:
            out["cloud"] = self.cloud
        if self.region:
            out["region"] = self.region
        if self.zone:
            out["zone"] = self.zone
        return out

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> DomainFilter:
        return cls(
            cloud=data.get("cloud"), region=data.get("region"), zone=data.get("zone")
        )


@dataclass(frozen=True)
class ReplicaPolicyConfig:
    """The ``replica_policy`` stanza: autoscaling + SpotHedge knobs.

    Defaults follow the paper: 1-minute QPS window, ~10-minute hold time
    before the target changes, two overprovisioned spot replicas, dynamic
    on-demand fallback on, dynamic spot placement.
    """

    target_qps_per_replica: float = 1.0
    min_replicas: int = 1
    max_replicas: int = 64
    fixed_target: Optional[int] = None
    num_overprovision: int = 2
    dynamic_ondemand_fallback: bool = True
    base_ondemand_fallback_replicas: int = 0
    spot_placer: str = "dynamic"
    qps_window: float = 60.0
    upscale_delay: float = 300.0
    downscale_delay: float = 600.0
    #: "qps" scales on request rate only; "slo" additionally bumps the
    #: candidate target when recent TTFT/TPOT samples violate their SLO.
    autoscale_mode: str = "qps"
    #: Time-to-first-token SLO in seconds (None = no TTFT signal).
    ttft_slo: Optional[float] = None
    #: Time-per-output-token SLO in seconds (None = no TPOT signal).
    tpot_slo: Optional[float] = None
    #: Violation fraction above which slo mode pushes the target up.
    slo_violation_threshold: float = 0.1
    #: Trailing window (seconds) over which violations are counted.
    slo_window: float = 120.0

    def __post_init__(self) -> None:
        if self.target_qps_per_replica <= 0:
            raise ValueError("target_qps_per_replica must be positive")
        if not 0 < self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"invalid replica bounds [{self.min_replicas}, {self.max_replicas}]"
            )
        if self.num_overprovision < 0 or self.base_ondemand_fallback_replicas < 0:
            raise ValueError("negative replica counts")
        if self.fixed_target is not None and self.fixed_target < 1:
            raise ValueError("fixed_target must be >= 1 when set")
        if self.spot_placer not in PLACERS:
            raise ValueError(
                f"unknown spot_placer {self.spot_placer!r}; "
                f"expected one of {PLACERS.names()}"
            )
        if min(self.qps_window, self.upscale_delay, self.downscale_delay) < 0:
            raise ValueError("negative autoscaler delays")
        if self.autoscale_mode not in AUTOSCALE_MODES:
            raise ValueError(
                f"unknown autoscale_mode {self.autoscale_mode!r}; "
                f"expected one of {AUTOSCALE_MODES.names()}"
            )
        if self.ttft_slo is not None and self.ttft_slo <= 0:
            raise ValueError("ttft_slo must be positive when set")
        if self.tpot_slo is not None and self.tpot_slo <= 0:
            raise ValueError("tpot_slo must be positive when set")
        if not 0.0 <= self.slo_violation_threshold < 1.0:
            raise ValueError("slo_violation_threshold outside [0, 1)")
        if self.slo_window <= 0:
            raise ValueError("slo_window must be positive")
        if self.autoscale_mode == "slo" and self.ttft_slo is None and self.tpot_slo is None:
            raise ValueError("autoscale_mode='slo' needs ttft_slo and/or tpot_slo")

    def to_dict(self) -> dict[str, Any]:
        return {
            "target_qps_per_replica": self.target_qps_per_replica,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "fixed_target": self.fixed_target,
            "num_overprovision": self.num_overprovision,
            "dynamic_ondemand_fallback": self.dynamic_ondemand_fallback,
            "base_ondemand_fallback_replicas": self.base_ondemand_fallback_replicas,
            "spot_placer": self.spot_placer,
            "qps_window": self.qps_window,
            "upscale_delay": self.upscale_delay,
            "downscale_delay": self.downscale_delay,
            "autoscale_mode": self.autoscale_mode,
            "ttft_slo": self.ttft_slo,
            "tpot_slo": self.tpot_slo,
            "slo_violation_threshold": self.slo_violation_threshold,
            "slo_window": self.slo_window,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ReplicaPolicyConfig:
        return cls(**data)


@dataclass(frozen=True)
class ResourceSpec:
    """The ``resources`` stanza: what each replica runs on.

    ``accelerator`` selects instance types from the catalog per cloud;
    ``any_of`` restricts the failure domains considered (Listing 1's
    example enables one AWS region plus all of GCP).  An empty ``any_of``
    enables every zone of the topology.  ``workers_per_replica > 1``
    models replicas partitioned over multiple instances (the SpotServe
    distributed-inference setting, §4).
    """

    accelerator: str = "A10G"
    any_of: tuple[DomainFilter, ...] = ()
    ports: int = 8080
    workers_per_replica: int = 1

    def __post_init__(self) -> None:
        if self.workers_per_replica < 1:
            raise ValueError("workers_per_replica must be >= 1")
        # YAML/JSON round-trips hand us lists; normalise so specs stay
        # hashable and comparable regardless of the input container.
        if not isinstance(self.any_of, tuple):
            object.__setattr__(self, "any_of", tuple(self.any_of))
        seen: set[DomainFilter] = set()
        for entry in self.any_of:
            if entry in seen:
                raise ValueError(
                    f"duplicate any_of entry {entry.to_dict()}: each "
                    "failure-domain filter may appear at most once"
                )
            seen.add(entry)

    def allowed_zones(self, topology: Topology) -> list[Zone]:
        """Resolve ``any_of`` into the concrete zone set Z of Alg. 1."""
        if not self.any_of:
            return topology.zones
        clouds = [f.cloud for f in self.any_of if f.cloud and not f.region]
        regions = [
            f"{f.cloud}:{f.region}" for f in self.any_of if f.region and not f.zone
        ]
        zone_ids = [
            f"{f.cloud}:{f.region}:{f.zone}" for f in self.any_of if f.zone is not None
        ]
        return topology.filter_zones(clouds=clouds, regions=regions, zone_ids=zone_ids)

    def to_dict(self) -> dict[str, Any]:
        return {
            "accelerator": self.accelerator,
            "any_of": [f.to_dict() for f in self.any_of],
            "ports": self.ports,
            "workers_per_replica": self.workers_per_replica,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ResourceSpec:
        return cls(
            accelerator=data.get("accelerator", "A10G"),
            any_of=tuple(DomainFilter.from_dict(f) for f in data.get("any_of", [])),
            ports=data.get("ports", 8080),
            workers_per_replica=data.get("workers_per_replica", 1),
        )


@dataclass(frozen=True)
class ServiceSpec:
    """A complete service definition (Listing 1)."""

    name: str = "service"
    readiness_probe_path: str = "/health"
    replica_policy: ReplicaPolicyConfig = field(default_factory=ReplicaPolicyConfig)
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    load_balancing_policy: str = "least_load"
    request_timeout: float = 100.0
    #: Bound on each replica's server-side FIFO queue (requests waiting
    #: for a batching slot).  ``None`` = unbounded (no shedding).
    max_queue_per_replica: Optional[int] = None

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.max_queue_per_replica is not None and self.max_queue_per_replica < 0:
            raise ValueError("max_queue_per_replica must be >= 0 when set")
        if self.load_balancing_policy not in BALANCERS:
            raise ValueError(
                f"unknown load_balancing_policy {self.load_balancing_policy!r}; "
                f"expected one of {BALANCERS.names()}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "readiness_probe": {"path": self.readiness_probe_path},
            "replica_policy": self.replica_policy.to_dict(),
            "resources": self.resources.to_dict(),
            "load_balancing_policy": self.load_balancing_policy,
            "request_timeout": self.request_timeout,
            "max_queue_per_replica": self.max_queue_per_replica,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ServiceSpec:
        return cls(
            name=data.get("name", "service"),
            readiness_probe_path=data.get("readiness_probe", {}).get("path", "/health"),
            replica_policy=ReplicaPolicyConfig.from_dict(data.get("replica_policy", {})),
            resources=ResourceSpec.from_dict(data.get("resources", {})),
            load_balancing_policy=data.get("load_balancing_policy", "least_load"),
            request_timeout=data.get("request_timeout", 100.0),
            max_queue_per_replica=data.get("max_queue_per_replica"),
        )
