"""Result serialisation — raw experiment data as JSON.

The paper's artifact ships raw measurement data plus plotting scripts;
this module is the equivalent export path: every report type serialises
to plain dictionaries and a :class:`ResultStore` collects them into one
JSON document per experiment, so external tooling (notebooks, plotting
scripts) can regenerate figures without re-running simulations.

:class:`ReplayCache` adds a content-addressed on-disk cache of replay
results: a figure script re-run recomputes only the points whose inputs
(trace content, policy, config, seed) actually changed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

import numpy as np

from repro.cloud.traces import SpotTrace
from repro.experiments.replay import ReplayConfig, ReplayResult
from repro.serving.service import ServiceReport
from repro.sim.metrics import LatencySummary

__all__ = [
    "ReplayCache",
    "ResultStore",
    "replay_result_from_dict",
    "replay_result_to_dict",
    "service_report_to_dict",
]


def _summary_to_dict(summary: Optional[LatencySummary]) -> Optional[dict[str, float]]:
    if not summary:  # None or a NaN-safe empty summary (count == 0)
        return None
    return {
        "count": summary.count,
        "mean": summary.mean,
        "p50": summary.p50,
        "p90": summary.p90,
        "p99": summary.p99,
    }


def service_report_to_dict(report: ServiceReport) -> dict[str, Any]:
    """Flatten a §5.1 end-to-end report (latency samples omitted; the
    percentile summaries carry the figures)."""
    return {
        "system": report.system,
        "duration": report.duration,
        "total_requests": report.total_requests,
        "completed": report.completed,
        "failed": report.failed,
        "failure_rate": report.failure_rate,
        "latency": _summary_to_dict(report.latency),
        "ttft": _summary_to_dict(report.ttft),
        "spot_cost": report.spot_cost,
        "od_cost": report.od_cost,
        "total_cost": report.total_cost,
        "availability": report.availability,
        "preemptions": report.preemptions,
        "launch_failures": report.launch_failures,
    }


def replay_result_to_dict(
    result: ReplayResult, *, include_series: bool = False
) -> dict[str, Any]:
    """Flatten a §5.2 replay result.  ``include_series`` adds the full
    ready-replica series (large for two-month traces)."""
    out: dict[str, Any] = {
        "policy": result.policy,
        "trace": result.trace,
        "n_tar": result.n_tar,
        "availability": result.availability,
        "relative_cost": result.relative_cost,
        "spot_cost": result.spot_cost,
        "od_cost": result.od_cost,
        "preemptions": result.preemptions,
        "launch_failures": result.launch_failures,
        "step": result.step,
    }
    # Heterogeneous-fleet fields only appear when the replay tracked
    # them, so homogeneous documents keep their exact historic shape.
    if result.eff_availability is not None:
        out["eff_availability"] = result.eff_availability
    if include_series:
        out["ready_series"] = result.ready_series.tolist()
        if result.od_series is not None:
            out["od_series"] = result.od_series.tolist()
        if result.eff_ready_series is not None:
            out["eff_ready_series"] = result.eff_ready_series.tolist()
    return out


def replay_result_from_dict(data: Mapping[str, Any]) -> ReplayResult:
    """Rebuild a :class:`ReplayResult` from its flattened form.

    Inverse of :func:`replay_result_to_dict` with
    ``include_series=True`` (the series is required — without it the
    object could not answer latency-estimation queries).
    """
    if "ready_series" not in data:
        raise ValueError("serialised replay result lacks 'ready_series'")
    return ReplayResult(
        policy=data["policy"],
        trace=data["trace"],
        n_tar=int(data["n_tar"]),
        availability=float(data["availability"]),
        relative_cost=float(data["relative_cost"]),
        spot_cost=float(data["spot_cost"]),
        od_cost=float(data["od_cost"]),
        preemptions=int(data["preemptions"]),
        launch_failures=int(data["launch_failures"]),
        ready_series=np.asarray(data["ready_series"], dtype=int),
        step=float(data["step"]),
        od_series=(
            np.asarray(data["od_series"], dtype=int)
            if data.get("od_series") is not None
            else None
        ),
        eff_ready_series=(
            np.asarray(data["eff_ready_series"], dtype=float)
            if data.get("eff_ready_series") is not None
            else None
        ),
        eff_availability=(
            float(data["eff_availability"])
            if data.get("eff_availability") is not None
            else None
        ),
    )


class ReplayCache:
    """Content-addressed on-disk cache of replay results.

    Entries are keyed by SHA-256 over the *inputs* that determine a
    replay's output: the trace's content digest
    (:meth:`~repro.cloud.traces.SpotTrace.digest`), the policy name plus
    its declared parameters, the full :class:`ReplayConfig`, and the
    seed.  Anything that changes any of those produces a different key,
    so stale hits are impossible; re-running a figure script recomputes
    only invalidated points.  The replay *engine* is deliberately not
    part of the key: discrete, vectorized and hybrid replays are
    byte-identical by contract (property-tested), so entries are shared
    across engines.

    The cache directory is ``$REPRO_CACHE_DIR`` when set, else
    ``~/.cache/repro/replay``.  One JSON file per entry, written
    atomically (temp file + rename) so concurrent sweep workers can
    share the cache without locking.  ``clear()`` (or simply deleting
    the directory) empties it.
    """

    ENV_VAR = "REPRO_CACHE_DIR"

    def __init__(self, root: Optional[str | Path] = None) -> None:
        if root is None:
            root = os.environ.get(self.ENV_VAR)
        if root is None:
            root = Path.home() / ".cache" / "repro" / "replay"
        self.root = Path(root)

    # -- keying --------------------------------------------------------
    @staticmethod
    def key(
        trace: SpotTrace,
        policy_name: str,
        policy_params: Optional[Mapping[str, Any]] = None,
        config: Optional[ReplayConfig] = None,
        seed: int = 0,
    ) -> str:
        """Deterministic hex key for one replay invocation."""
        config = config or ReplayConfig()
        cfg_dict = dataclasses.asdict(config)
        if cfg_dict.get("zone_price_multipliers") is not None:
            cfg_dict["zone_price_multipliers"] = dict(
                sorted(cfg_dict["zone_price_multipliers"].items())
            )
        if cfg_dict.get("zone_capacity_weights") is not None:
            cfg_dict["zone_capacity_weights"] = dict(
                sorted(cfg_dict["zone_capacity_weights"].items())
            )
        material = json.dumps(
            {
                "trace": trace.digest(),
                "policy": policy_name,
                "params": dict(sorted((policy_params or {}).items())),
                "config": cfg_dict,
                "seed": int(seed),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- access --------------------------------------------------------
    def get(self, key: str) -> Optional[ReplayResult]:
        """The cached result for ``key``, or ``None`` on a miss (or an
        unreadable/corrupt entry, which is treated as a miss)."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            return replay_result_from_dict(data)
        except (OSError, ValueError, KeyError):
            return None

    def put(self, key: str, result: ReplayResult) -> None:
        """Store ``result`` under ``key`` (atomic write)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(replay_result_to_dict(result, include_series=True))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


@dataclass
class ResultStore:
    """Accumulates experiment records and writes one JSON document.

    Records are ``(experiment, label, payload)`` triples; the document
    groups payloads by experiment.
    """

    metadata: dict[str, Any] = field(default_factory=dict)
    _records: dict[str, dict[str, Any]] = field(default_factory=dict)

    def add(self, experiment: str, label: str, payload: Any) -> None:
        """File a record.  ``payload`` may be a report/result object (it
        is flattened automatically) or any JSON-serialisable value."""
        if isinstance(payload, ServiceReport):
            payload = service_report_to_dict(payload)
        elif isinstance(payload, ReplayResult):
            payload = replay_result_to_dict(payload)
        bucket = self._records.setdefault(experiment, {})
        if label in bucket:
            raise ValueError(f"duplicate record {experiment!r}/{label!r}")
        bucket[label] = payload

    def experiments(self) -> list[str]:
        return list(self._records)

    def get(self, experiment: str, label: str) -> Any:
        return self._records[experiment][label]

    def to_document(self) -> dict[str, Any]:
        return {"metadata": dict(self.metadata), "experiments": self._records}

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_document(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> ResultStore:
        data = json.loads(Path(path).read_text())
        store = cls(metadata=data.get("metadata", {}))
        store._records = data.get("experiments", {})
        return store
