"""Result serialisation — raw experiment data as JSON.

The paper's artifact ships raw measurement data plus plotting scripts;
this module is the equivalent export path: every report type serialises
to plain dictionaries and a :class:`ResultStore` collects them into one
JSON document per experiment, so external tooling (notebooks, plotting
scripts) can regenerate figures without re-running simulations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.experiments.replay import ReplayResult
from repro.serving.service import ServiceReport
from repro.sim.metrics import LatencySummary

__all__ = ["ResultStore", "replay_result_to_dict", "service_report_to_dict"]


def _summary_to_dict(summary: Optional[LatencySummary]) -> Optional[dict[str, float]]:
    if not summary:  # None or a NaN-safe empty summary (count == 0)
        return None
    return {
        "count": summary.count,
        "mean": summary.mean,
        "p50": summary.p50,
        "p90": summary.p90,
        "p99": summary.p99,
    }


def service_report_to_dict(report: ServiceReport) -> dict[str, Any]:
    """Flatten a §5.1 end-to-end report (latency samples omitted; the
    percentile summaries carry the figures)."""
    return {
        "system": report.system,
        "duration": report.duration,
        "total_requests": report.total_requests,
        "completed": report.completed,
        "failed": report.failed,
        "failure_rate": report.failure_rate,
        "latency": _summary_to_dict(report.latency),
        "ttft": _summary_to_dict(report.ttft),
        "spot_cost": report.spot_cost,
        "od_cost": report.od_cost,
        "total_cost": report.total_cost,
        "availability": report.availability,
        "preemptions": report.preemptions,
        "launch_failures": report.launch_failures,
    }


def replay_result_to_dict(
    result: ReplayResult, *, include_series: bool = False
) -> dict[str, Any]:
    """Flatten a §5.2 replay result.  ``include_series`` adds the full
    ready-replica series (large for two-month traces)."""
    out: dict[str, Any] = {
        "policy": result.policy,
        "trace": result.trace,
        "n_tar": result.n_tar,
        "availability": result.availability,
        "relative_cost": result.relative_cost,
        "spot_cost": result.spot_cost,
        "od_cost": result.od_cost,
        "preemptions": result.preemptions,
        "launch_failures": result.launch_failures,
        "step": result.step,
    }
    if include_series:
        out["ready_series"] = result.ready_series.tolist()
    return out


@dataclass
class ResultStore:
    """Accumulates experiment records and writes one JSON document.

    Records are ``(experiment, label, payload)`` triples; the document
    groups payloads by experiment.
    """

    metadata: dict[str, Any] = field(default_factory=dict)
    _records: dict[str, dict[str, Any]] = field(default_factory=dict)

    def add(self, experiment: str, label: str, payload: Any) -> None:
        """File a record.  ``payload`` may be a report/result object (it
        is flattened automatically) or any JSON-serialisable value."""
        if isinstance(payload, ServiceReport):
            payload = service_report_to_dict(payload)
        elif isinstance(payload, ReplayResult):
            payload = replay_result_to_dict(payload)
        bucket = self._records.setdefault(experiment, {})
        if label in bucket:
            raise ValueError(f"duplicate record {experiment!r}/{label!r}")
        bucket[label] = payload

    def experiments(self) -> list[str]:
        return list(self._records)

    def get(self, experiment: str, label: str) -> Any:
        return self._records[experiment][label]

    def to_document(self) -> dict[str, Any]:
        return {"metadata": dict(self.metadata), "experiments": self._records}

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_document(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "ResultStore":
        data = json.loads(Path(path).read_text())
        store = cls(metadata=data.get("metadata", {}))
        store._records = data.get("experiments", {})
        return store
