"""Parameter sweeps over experiment configurations.

The sensitivity studies (Fig. 14c/d) and ablations are sweeps: run the
same experiment across a grid of parameter values and collect one
record per point.  :func:`grid_sweep` is that loop with deterministic
ordering, error isolation, and tidy records ready for a
:class:`~repro.experiments.results.ResultStore`.

Grid points are independent experiments, so the sweep parallelises
trivially: ``workers=N`` fans points out over a
``concurrent.futures.ProcessPoolExecutor`` while preserving the exact
serial semantics — point order, per-point derived seeds, and error
capture are all independent of ``N`` (see the module tests, which
assert ``workers=4`` output equals ``workers=1`` byte for byte).
"""

from __future__ import annotations

import itertools
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.sim.rng import derive_seed
from repro.telemetry.clock import wall_monotonic
from repro.telemetry.events import NULL_BUS, EventBus, SweepProgress

__all__ = ["SweepPoint", "grid_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameters used and the outcome (or error)."""

    params: dict[str, Any]
    result: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def label(self) -> str:
        """Stable human-readable key, e.g. ``n_extra=2,cold_start=180``."""
        return ",".join(f"{k}={v}" for k, v in self.params.items())


def _expand_grid(
    grid: Mapping[str, Sequence[Any]],
    root_seed: Optional[int],
    seed_param: str,
) -> list[dict[str, Any]]:
    """All parameter combinations, in deterministic grid order.

    With ``root_seed`` set, each combination additionally gets an
    independent ``seed_param`` value derived from the root seed and the
    point's label — the same keyed-stream scheme
    :class:`~repro.sim.rng.RngRegistry` uses, so per-point streams are
    uncorrelated and stable under grid reordering.
    """
    if not grid:
        raise ValueError("empty parameter grid")
    for name, values in grid.items():
        if len(values) == 0:
            raise ValueError(f"parameter {name!r} has no values")
    if root_seed is not None and seed_param in grid:
        raise ValueError(
            f"seed parameter {seed_param!r} is already a grid axis; "
            "drop root_seed or rename seed_param"
        )
    names = list(grid)
    combos = []
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        if root_seed is not None:
            label = ",".join(f"{k}={v}" for k, v in params.items())
            params[seed_param] = derive_seed(root_seed, label)
        combos.append(params)
    return combos


def _run_point(
    run: Callable[..., Any], params: dict[str, Any], capture_errors: bool
) -> tuple[Any, Optional[str]]:
    """Execute one grid point; must stay module-level (pickled to
    worker processes)."""
    try:
        return run(**params), None
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        if not capture_errors:
            raise
        return None, f"{type(exc).__name__}: {exc}"


def grid_sweep(
    run: Callable[..., Any],
    grid: Mapping[str, Sequence[Any]],
    *,
    raise_errors: bool = False,
    workers: int = 1,
    root_seed: Optional[int] = None,
    seed_param: str = "seed",
    telemetry: Optional[EventBus] = None,
) -> list[SweepPoint]:
    """Run ``run(**params)`` for every combination in ``grid``.

    Combinations are enumerated in the deterministic order of
    ``itertools.product`` over the grid's insertion order.  By default a
    failing point is captured in its :class:`SweepPoint` (``error`` set,
    ``result`` None) instead of aborting the sweep; set
    ``raise_errors=True`` to fail fast.

    ``workers > 1`` runs points on a process pool.  Results, ordering,
    errors, and derived seeds are identical to the serial sweep for any
    ``N`` (``workers=1`` never spawns a process and keeps today's
    in-process behaviour exactly); ``run``, its parameters, and its
    results must be picklable on the parallel path.  With
    ``raise_errors=True`` the exception surfaced is the one from the
    earliest failing point in grid order, as in serial mode.

    ``root_seed`` derives an independent per-point seed (passed as
    keyword ``seed_param``) via the registry's keyed-hash scheme, so a
    multi-seed figure sweep is one call.  ``telemetry`` receives one
    :class:`~repro.telemetry.events.SweepProgress` event per completed
    point, in point order, timestamped with wall-clock
    :func:`repro.telemetry.clock.wall_monotonic` (progress is an
    observability concern; simulated code never reads real time).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    bus = telemetry if telemetry is not None else NULL_BUS
    combos = _expand_grid(grid, root_seed, seed_param)
    total = len(combos)
    points: list[SweepPoint] = []

    if workers == 1:
        for index, params in enumerate(combos):
            result, error = _run_point(run, params, not raise_errors)
            point = SweepPoint(params=params, result=result, error=error)
            points.append(point)
            if bus.enabled:
                bus.emit(
                    SweepProgress(
                        wall_monotonic(), index, total, point.label(), point.ok
                    )
                )
        return points

    with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
        futures: list[Future] = [
            pool.submit(_run_point, run, params, not raise_errors)
            for params in combos
        ]
        # Collect in submission order: output order (and, with
        # raise_errors, which failure surfaces) never depends on
        # completion order.
        for index, (params, future) in enumerate(zip(combos, futures)):
            result, error = future.result()  # re-raises under raise_errors
            point = SweepPoint(params=params, result=result, error=error)
            points.append(point)
            if bus.enabled:
                bus.emit(
                    SweepProgress(
                        wall_monotonic(), index, total, point.label(), point.ok
                    )
                )
    return points
