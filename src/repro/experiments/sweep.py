"""Parameter sweeps over experiment configurations.

The sensitivity studies (Fig. 14c/d) and ablations are sweeps: run the
same experiment across a grid of parameter values and collect one
record per point.  :func:`grid_sweep` is that loop with deterministic
ordering, error isolation, and tidy records ready for a
:class:`~repro.experiments.results.ResultStore`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = ["SweepPoint", "grid_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameters used and the outcome (or error)."""

    params: dict[str, Any]
    result: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def label(self) -> str:
        """Stable human-readable key, e.g. ``n_extra=2,cold_start=180``."""
        return ",".join(f"{k}={v}" for k, v in self.params.items())


def grid_sweep(
    run: Callable[..., Any],
    grid: Mapping[str, Sequence[Any]],
    *,
    raise_errors: bool = False,
) -> list[SweepPoint]:
    """Run ``run(**params)`` for every combination in ``grid``.

    Combinations are enumerated in the deterministic order of
    ``itertools.product`` over the grid's insertion order.  By default a
    failing point is captured in its :class:`SweepPoint` (``error`` set,
    ``result`` None) instead of aborting the sweep; set
    ``raise_errors=True`` to fail fast.
    """
    if not grid:
        raise ValueError("empty parameter grid")
    for name, values in grid.items():
        if len(values) == 0:
            raise ValueError(f"parameter {name!r} has no values")
    names = list(grid)
    points: list[SweepPoint] = []
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        try:
            result = run(**params)
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            if raise_errors:
                raise
            points.append(SweepPoint(params=params, error=f"{type(exc).__name__}: {exc}"))
            continue
        points.append(SweepPoint(params=params, result=result))
    return points
