"""Homogeneous-vs-heterogeneous fleet frontier (ablation).

The heterogeneous-fleet question is a frontier, not a single number:
a homogeneous A10G fleet is cheap but capacity-poor, an H100 fleet is
capacity-rich but pricey and heavily reclaimed, and the mixed fleet
lets SpotHedge's MIN-COST walk pick whichever (zone, instance-type)
pool currently offers the best cost-per-effective-throughput.  This
module replays the *same* base capacity trace under several fleet
compositions and reports each fleet's (effective availability,
relative cost) point, so the homogeneous points trace the frontier the
mixed fleet should dominate.

Every fleet is scored in a common currency: capacity weights and
prices are expressed relative to the reference instance type
(``g5.48xlarge``, the paper's 8×A10G serving shape), ``k`` is the
reference type's on-demand/spot ratio, and ``relative_cost`` is
therefore cost versus holding ``n_tar`` reference on-demand replicas —
directly comparable across fleets.

Results are plain :class:`~repro.experiments.replay.ReplayResult`\\ s
produced by the discrete engine with
``zone_capacity_weights``/``zone_price_multipliers`` set, cached
through :class:`~repro.experiments.results.ReplayCache`, swept with
:func:`~repro.experiments.sweep.grid_sweep`, and serialised by
:func:`frontier_to_json` with sorted keys — byte-identical across
processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import functools
import json
from typing import Optional, Sequence

from repro.cloud.catalog import hetero_catalog
from repro.cloud.gpus import (
    pool_capacity_weights,
    pool_price_multipliers,
    pool_spot_costs,
    make_hetero_trace,
)
from repro.cloud.pricing import PriceBook
from repro.cloud.traces import aws1
from repro.core.fleet import hetero_spothedge
from repro.experiments.replay import ReplayConfig, ReplayResult, TraceReplayer
from repro.experiments.results import ReplayCache, replay_result_to_dict
from repro.experiments.sweep import SweepPoint, grid_sweep

__all__ = [
    "FLEETS",
    "REFERENCE_ACCELERATOR",
    "REFERENCE_TYPE",
    "frontier_to_json",
    "pareto_fleets",
    "run_fleet",
    "run_frontier",
]

#: The common-currency instance type: the paper's Llama-2-70B serving
#: shape (8×A10G).  Capacity weight 1.0 and price multiplier 1.0 by
#: construction.
REFERENCE_TYPE = "g5.48xlarge"
REFERENCE_ACCELERATOR = "A10G"

#: Fleet compositions, in frontier order: four homogeneous single-type
#: fleets spanning the GPU generations, then the mixed fleet SpotHedge
#: co-optimises over.  All types are AWS shapes so every fleet sees the
#: same base zones of the AWS 1 trace.
FLEETS: dict[str, tuple[str, ...]] = {
    "A10G": ("g5.48xlarge",),
    "L4": ("g6.48xlarge",),
    "A100": ("p4d.24xlarge",),
    "H100": ("p5.48xlarge",),
    "mixed": ("g5.48xlarge", "g6.48xlarge", "p4d.24xlarge", "p5.48xlarge"),
}


def run_fleet(
    fleet: str = "mixed",
    *,
    n_tar: int = 4,
    seed: int = 0,
    duration: Optional[float] = None,
    use_cache: bool = True,
) -> ReplayResult:
    """Replay one fleet composition over the AWS 1 base trace.

    The base trace is expanded into per-(zone, instance-type) pools
    (:func:`~repro.cloud.gpus.make_hetero_trace`, gating seeded by
    ``seed``), SpotHedge is built with the co-optimised
    cost-per-effective-throughput signal, and the replay runs on the
    discrete engine with capacity weights and per-pool prices in
    reference units.  ``duration`` (seconds) optionally windows the
    base trace from its start — the CI smoke uses a few hours.
    """
    try:
        instance_types = FLEETS[fleet]
    except KeyError:
        raise ValueError(f"unknown fleet {fleet!r}: expected one of {list(FLEETS)}")
    catalog = hetero_catalog()
    base = aws1()
    if duration is not None and duration < base.duration:
        base = base.window(0.0, duration, name=f"{base.name} [{duration / 3600:g}h]")
    trace = make_hetero_trace(
        base, instance_types, catalog, seed=seed, name=f"{base.name}-{fleet}"
    )
    book = PriceBook(catalog)
    pools = list(trace.zone_ids)
    reference = catalog.get(REFERENCE_TYPE)
    config = ReplayConfig(
        n_tar=n_tar,
        k=reference.on_demand_hourly / reference.spot_hourly,
        zone_price_multipliers=pool_price_multipliers(
            pools, book, reference_price=reference.spot_hourly
        ),
        zone_capacity_weights=pool_capacity_weights(
            pools, catalog, reference=REFERENCE_ACCELERATOR
        ),
    )
    policy_name = f"SpotHedge-{fleet}"
    cache = ReplayCache() if use_cache else None
    if cache is not None:
        key = ReplayCache.key(trace, policy_name, None, config, seed)
        hit = cache.get(key)
        if hit is not None:
            return hit
    policy = hetero_spothedge(
        pools,
        pool_costs=pool_spot_costs(pools, book, reference=REFERENCE_ACCELERATOR),
        pool_weights=config.zone_capacity_weights,
        name=policy_name,
    )
    replayer = TraceReplayer(trace, config, seed=seed, engine="discrete")
    result = replayer.run(policy)
    if cache is not None:
        cache.put(key, result)
    return result


def run_frontier(
    fleets: Optional[Sequence[str]] = None,
    *,
    n_tar: int = 4,
    seed: int = 0,
    duration: Optional[float] = None,
    workers: int = 1,
    use_cache: bool = True,
) -> list[SweepPoint]:
    """Sweep :func:`run_fleet` over the fleet compositions.

    One :class:`~repro.experiments.sweep.SweepPoint` per fleet, in the
    declared fleet order; parallel workers preserve the serial output
    exactly (``grid_sweep``'s contract).
    """
    names = list(fleets) if fleets is not None else list(FLEETS)
    for name in names:
        if name not in FLEETS:
            raise ValueError(f"unknown fleet {name!r}: expected one of {list(FLEETS)}")
    run = functools.partial(
        run_fleet, n_tar=n_tar, seed=seed, duration=duration, use_cache=use_cache
    )
    return grid_sweep(run, {"fleet": names}, workers=workers)


def pareto_fleets(points: Sequence[SweepPoint]) -> list[str]:
    """Fleets on the (effective availability, cost) Pareto frontier.

    A fleet is dominated when another fleet has availability at least
    as high *and* cost at least as low, with one strictly better.
    Returned in the input's fleet order (deterministic).
    """
    scored = [
        (p.params["fleet"], p.result.eff_availability, p.result.relative_cost)
        for p in points
        if p.ok and p.result.eff_availability is not None
    ]
    front: list[str] = []
    for name, avail, cost in scored:
        dominated = any(
            (o_avail >= avail and o_cost <= cost)
            and (o_avail > avail or o_cost < cost)
            for o_name, o_avail, o_cost in scored
            if o_name != name
        )
        if not dominated:
            front.append(name)
    return front


def frontier_to_json(
    points: Sequence[SweepPoint],
    *,
    n_tar: int = 4,
    seed: int = 0,
) -> str:
    """Serialise a frontier sweep to byte-stable JSON.

    Keys are sorted at every level and the float values are produced by
    a deterministic replay, so the output is byte-identical across
    processes and ``PYTHONHASHSEED`` values (the CI smoke diffs two
    independent runs).
    """
    fleets: dict[str, object] = {}
    for point in points:
        name = point.params["fleet"]
        if not point.ok:
            fleets[name] = {"error": point.error}
            continue
        record = replay_result_to_dict(point.result)
        record["instance_types"] = list(FLEETS[name])
        fleets[name] = record
    payload = {
        "experiment": "hetero-frontier",
        "reference": {
            "instance_type": REFERENCE_TYPE,
            "accelerator": REFERENCE_ACCELERATOR,
        },
        "n_tar": n_tar,
        "seed": seed,
        "fleets": fleets,
        "pareto": pareto_fleets(points),
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
