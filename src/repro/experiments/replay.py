"""Policy replay on spot obtainability traces (§5.2).

Instead of simulating the full request path, this harness replays a
:class:`SpotTrace` at replica granularity, exactly like the paper's
simulated-preemption experiments: at every trace step the policy sees
its fleet, preemptions are injected wherever zone capacity drops below
the policy's placements, launches fail in zones without capacity, and
replicas become ready one cold start after a successful launch.

Outputs per policy: availability (fraction of steps with ≥ N_Tar ready
replicas — Fig. 14a), cost relative to an all-on-demand deployment
(Fig. 14b), and a queueing-based service-latency estimate for a given
workload (Figs. 14c/d and 15).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.cloud.traces import SpotTrace
from repro.serving.policy import Observation, ServingPolicy
from repro.sim.rng import RngRegistry
from repro.telemetry.events import (
    NULL_BUS,
    EventBus,
    FleetSample,
    ReplicaLaunch,
    ReplicaLaunchFailed,
    ReplicaPreempted,
    ReplicaTerminated,
)
from repro.workloads.request import Workload

__all__ = [
    "ReplayConfig",
    "ReplayResult",
    "TraceReplayer",
    "erlang_c_wait",
    "estimate_latency",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ReplayConfig:
    """Replay parameters.

    ``k`` is the on-demand/spot price ratio; costs are reported relative
    to holding ``n_tar`` on-demand replicas for the whole trace.  The
    default cold start follows the §2.3 measurement (~183 s).
    """

    n_tar: int = 4
    cold_start: float = 180.0
    k: float = 3.0
    max_launch_attempts_per_step: int = 8
    #: Optional per-zone spot price multipliers (1.0 = the base spot
    #: unit price).  Models the regional price spread MIN-COST exploits;
    #: zones absent from the mapping cost 1.0.
    zone_price_multipliers: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.n_tar < 1:
            raise ValueError("n_tar must be >= 1")
        if self.cold_start < 0:
            raise ValueError("negative cold start")
        if self.k <= 0:
            raise ValueError("non-positive cost ratio")
        if self.max_launch_attempts_per_step < 1:
            raise ValueError("need at least one launch attempt per step")
        if self.zone_price_multipliers is not None:
            for zone, multiplier in self.zone_price_multipliers.items():
                if multiplier <= 0:
                    raise ValueError(f"non-positive price multiplier for {zone}")


@dataclass
class _ReplayInstance:
    zone: Optional[str]  # None for on-demand
    spot: bool
    ready_at: float
    id: int = -1  # replica id in telemetry events; -1 when untracked


@dataclass(frozen=True)
class ReplayResult:
    """Per-policy replay outcome."""

    policy: str
    trace: str
    n_tar: int
    availability: float
    relative_cost: float
    spot_cost: float
    od_cost: float
    preemptions: int
    launch_failures: int
    ready_series: np.ndarray  # total ready replicas per step
    step: float

    def summary_row(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"{self.policy:<12} {self.trace:<8} avail={self.availability:6.1%} "
            f"cost={self.relative_cost:5.1%} of OD  "
            f"preemptions={self.preemptions}"
        )


class TraceReplayer:
    """Replays one policy over one trace."""

    def __init__(
        self,
        trace: SpotTrace,
        config: Optional[ReplayConfig] = None,
        *,
        seed: int = 0,
        telemetry: Optional[EventBus] = None,
    ) -> None:
        self.trace = trace
        self.config = config or ReplayConfig()
        self._rng = RngRegistry(seed).stream("replay")
        self.telemetry = telemetry if telemetry is not None else NULL_BUS
        self._next_id = 0

    def run(self, policy: ServingPolicy, *, spot_zones: Optional[Sequence[str]] = None) -> ReplayResult:
        """Replay ``policy`` over the full trace."""
        cfg = self.config
        trace = self.trace
        bus = self.telemetry
        zones = list(spot_zones) if spot_zones is not None else list(trace.zone_ids)
        step = trace.step
        d = cfg.cold_start
        spot: list[_ReplayInstance] = []
        od: list[_ReplayInstance] = []
        preemptions = 0
        launch_failures = 0
        spot_cost = 0.0
        od_cost = 0.0
        ready_series = np.zeros(trace.n_steps, dtype=int)
        logger.info(
            "replaying %s over %s (%d steps)", policy.name, trace.name, trace.n_steps
        )

        for k_step in range(trace.n_steps):
            now = k_step * step

            # 1. Inject preemptions: per zone, capacity below placements.
            for zone in zones:
                capacity = int(trace.zone_row(zone)[k_step])
                in_zone = [i for i in spot if i.zone == zone]
                excess = len(in_zone) - capacity
                if excess > 0:
                    victims = self._rng.choice(len(in_zone), size=excess, replace=False)
                    for index in sorted(victims, reverse=True):
                        victim = in_zone[index]
                        spot.remove(victim)
                        preemptions += 1
                        if bus.enabled:
                            # Positional construction: kwargs cost ~2x
                            # on this hot path (fields: time,
                            # replica_id, zone, spot).
                            bus.emit(ReplicaPreempted(now, victim.id, zone, True))
                        policy.on_spot_preempted(zone)

            # 2. Observe and ask the policy for targets.
            ready_spot = sum(1 for i in spot if i.ready_at <= now)
            ready_od = sum(1 for i in od if i.ready_at <= now)
            by_zone: dict[str, int] = {}
            for inst in spot:
                by_zone[inst.zone] = by_zone.get(inst.zone, 0) + 1
            obs = Observation(
                now=now,
                n_tar=cfg.n_tar,
                spot_launched=len(spot),
                spot_ready=ready_spot,
                od_launched=len(od),
                od_ready=ready_od,
                spot_by_zone=by_zone,
            )
            mix = policy.target_mix(obs)

            # 3. Reconcile spot fleet.  Zones that already returned a
            # capacity error this step are not retried within the step.
            counted = len(spot) if mix.count_provisioning_spot else ready_spot
            attempts = 0
            failed_zones: set[str] = set()
            while counted < mix.spot_target and attempts < cfg.max_launch_attempts_per_step:
                attempts += 1
                by_zone = {}
                for inst in spot:
                    by_zone[inst.zone] = by_zone.get(inst.zone, 0) + 1
                obs_now = Observation(
                    now=now,
                    n_tar=cfg.n_tar,
                    spot_launched=len(spot),
                    spot_ready=ready_spot,
                    od_launched=len(od),
                    od_ready=ready_od,
                    spot_by_zone=by_zone,
                )
                zone = policy.select_spot_zone(obs_now, frozenset(failed_zones))
                if zone is None:
                    break
                capacity = int(trace.zone_row(zone)[k_step])
                used = sum(1 for i in spot if i.zone == zone)
                if used < capacity:
                    self._next_id += 1
                    spot.append(
                        _ReplayInstance(
                            zone=zone, spot=True, ready_at=now + d, id=self._next_id
                        )
                    )
                    if bus.enabled:
                        bus.emit(ReplicaLaunch(now, self._next_id, zone, True))
                    policy.on_spot_ready(zone)  # launch succeeded in this zone
                    counted += 1
                else:
                    launch_failures += 1
                    failed_zones.add(zone)
                    if bus.enabled:
                        # No replica object ever existed for a failed
                        # attempt at this granularity: id -1.
                        bus.emit(ReplicaLaunchFailed(now, -1, zone, True))
                    policy.on_spot_launch_failed(zone)
            while len(spot) > mix.spot_target:
                # Scale down: drop the newest (least likely to be ready).
                spot.sort(key=lambda i: i.ready_at)
                victim = spot.pop()
                if bus.enabled:
                    bus.emit(
                        ReplicaTerminated(
                            now, victim.id, victim.zone or "", True, "scale_down"
                        )
                    )

            # 4. Reconcile on-demand fleet (always obtainable, §5.1).
            while len(od) < mix.od_target:
                od.append(_ReplayInstance(zone=None, spot=False, ready_at=now + d))
            while len(od) > mix.od_target:
                od.sort(key=lambda i: i.ready_at)
                od.pop()

            # 5. Accrue cost and record readiness.
            hours = step / 3600.0
            multipliers = cfg.zone_price_multipliers or {}
            spot_cost += sum(
                multipliers.get(i.zone, 1.0) for i in spot
            ) * hours  # spot replica-hour = 1 unit at the base price
            od_cost += len(od) * cfg.k * hours
            ready_series[k_step] = sum(1 for i in spot if i.ready_at <= now) + sum(
                1 for i in od if i.ready_at <= now
            )
            if bus.enabled and (
                k_step == 0 or ready_series[k_step] != ready_series[k_step - 1]
            ):
                bus.emit(FleetSample(now, int(ready_series[k_step]), cfg.n_tar))

        baseline = cfg.k * cfg.n_tar * (trace.n_steps * step / 3600.0)
        return ReplayResult(
            policy=policy.name,
            trace=trace.name,
            n_tar=cfg.n_tar,
            availability=float((ready_series >= cfg.n_tar).mean()),
            relative_cost=(spot_cost + od_cost) / baseline,
            spot_cost=spot_cost,
            od_cost=od_cost,
            preemptions=preemptions,
            launch_failures=launch_failures,
            ready_series=ready_series,
            step=step,
        )


# ----------------------------------------------------------------------
# Latency estimation from ready-replica series (Figs. 14c/d, 15)
# ----------------------------------------------------------------------


def erlang_c_wait(arrival_rate: float, service_time: float, servers: int) -> float:
    """Expected M/M/c queueing delay (Erlang C), in seconds.

    Returns ``inf`` when the system is unstable (ρ ≥ 1) or has no
    servers.
    """
    if servers <= 0:
        return math.inf
    if arrival_rate <= 0:
        return 0.0
    if service_time <= 0:
        return 0.0
    offered = arrival_rate * service_time  # Erlangs
    rho = offered / servers
    if rho >= 1.0:
        return math.inf
    # Erlang C probability of waiting, computed iteratively for stability.
    inv_b = 1.0
    for j in range(1, servers + 1):
        inv_b = 1.0 + inv_b * j / offered
    erlang_b = 1.0 / inv_b
    p_wait = erlang_b / (1.0 - rho * (1.0 - erlang_b))
    return p_wait * service_time / (servers * (1.0 - rho))


def estimate_latency(
    result: ReplayResult,
    workload: Workload,
    *,
    service_time: float = 8.0,
    concurrency_per_replica: int = 8,
    timeout: float = 100.0,
) -> np.ndarray:
    """Per-request latency estimates for a replayed policy.

    Each request sees the replica count of its arrival step.  With
    replicas up, latency = service time + Erlang-C queueing delay at
    the current arrival rate (each replica contributes
    ``concurrency_per_replica`` servers).  With no replicas (downtime),
    the request waits for the next step with capacity and times out at
    ``timeout`` — failed requests are reported *at* the timeout, which
    matches how the paper folds failures into tail latency.
    """
    if service_time <= 0 or timeout <= 0:
        raise ValueError("service_time and timeout must be positive")
    ready = result.ready_series
    step = result.step
    horizon = len(ready) * step
    # Arrival rate per step, for the Erlang-C load.
    rates = np.zeros(len(ready))
    for request in workload:
        if request.arrival_time < horizon:
            rates[int(request.arrival_time // step)] += 1.0
    rates /= step

    latencies = np.empty(len([r for r in workload if r.arrival_time < horizon]))
    index = 0
    for request in workload:
        if request.arrival_time >= horizon:
            break
        k_step = int(request.arrival_time // step)
        waited = 0.0
        j = k_step
        while j < len(ready) and ready[j] == 0 and waited < timeout:
            waited += step
            j += 1
        if waited >= timeout or j >= len(ready):
            latencies[index] = timeout
        else:
            servers = int(ready[j]) * concurrency_per_replica
            queue_wait = erlang_c_wait(rates[j], service_time, servers)
            total = waited + queue_wait + service_time
            latencies[index] = min(total, timeout)
        index += 1
    return latencies
