"""Policy replay on spot obtainability traces (§5.2).

Instead of simulating the full request path, this harness replays a
:class:`SpotTrace` at replica granularity, exactly like the paper's
simulated-preemption experiments: at every trace step the policy sees
its fleet, preemptions are injected wherever zone capacity drops below
the policy's placements, launches fail in zones without capacity, and
replicas become ready one cold start after a successful launch.

Outputs per policy: availability (fraction of steps with ≥ N_Tar ready
replicas — Fig. 14a), cost relative to an all-on-demand deployment
(Fig. 14b), and a queueing-based service-latency estimate for a given
workload (Figs. 14c/d and 15).

Performance: the replay step loop is the substrate every figure sweep
multiplies through (policy × trace × seed × parameter), so it avoids
O(fleet) work per step.  Zone capacity rows are extracted from the
trace once, fleet and readiness counts are maintained incrementally,
and scale-down selects its victim with a single max-scan instead of
sorting the fleet per termination.  :func:`estimate_latency` is fully
vectorised — O(steps + requests) instead of O(requests × steps).

For sweeps at trace scale, :class:`TraceReplayer` accepts
``engine="vectorized"`` or ``engine="hybrid"`` to dispatch to the
numpy fluid/flow data plane in :mod:`repro.experiments.fastpath`,
which is property-tested byte-identical to this discrete loop (the
oracle) on every :class:`ReplayResult` field.
"""

from __future__ import annotations

import logging
import math
from bisect import insort
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Callable, Mapping, MutableSequence, Optional, Sequence

import numpy as np

from repro.cloud.traces import SpotTrace
from repro.serving.policy import Observation, ServingPolicy
from repro.sim.rng import RngRegistry
from repro.telemetry.events import (
    NULL_BUS,
    CostSnapshot,
    EventBus,
    FleetSample,
    ReplicaLaunch,
    ReplicaLaunchFailed,
    ReplicaPreempted,
    ReplicaTerminated,
)
from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler
from repro.workloads.request import Workload

__all__ = [
    "ENGINES",
    "ReplayConfig",
    "ReplayResult",
    "TraceReplayer",
    "erlang_c_wait",
    "estimate_latency",
]

#: Replay engines accepted by :class:`TraceReplayer`.  ``discrete`` is
#: the per-instance oracle below; ``vectorized`` and ``hybrid`` run the
#: numpy data plane in :mod:`repro.experiments.fastpath` (``vectorized``
#: demands a fast-forwardable policy and raises otherwise, ``hybrid``
#: degrades to exact per-step processing when it cannot skip).  All
#: three produce byte-identical :class:`ReplayResult` objects.
ENGINES: tuple[str, ...] = ("discrete", "vectorized", "hybrid")

logger = logging.getLogger(__name__)

#: Shared empty exclusion set for launch attempts (avoids building a
#: fresh frozenset per reconcile round on the replay hot path).
_EMPTY_FROZENSET: frozenset = frozenset()

#: Profiling samples every (mask+1)-th step of the replay loop.  Stride
#: sampling keeps the enabled-profiler overhead under the 5% budget
#: (clock reads per sampled step only) while still attributing time to
#: the five phases proportionally; the stats underestimate absolute
#: totals by ~the stride, which ``PhaseProfiler.stride`` records.
#: Stride 32: six clock reads per sampled step amortise to well under
#: 5% of the ~1.5 us step (stride 16 measured right at the budget).
_PROFILE_STRIDE_MASK = 31


@dataclass(frozen=True)
class ReplayConfig:
    """Replay parameters.

    ``k`` is the on-demand/spot price ratio; costs are reported relative
    to holding ``n_tar`` on-demand replicas for the whole trace.  The
    default cold start follows the §2.3 measurement (~183 s).
    """

    n_tar: int = 4
    cold_start: float = 180.0
    k: float = 3.0
    max_launch_attempts_per_step: int = 8
    #: Optional per-zone spot price multipliers (1.0 = the base spot
    #: unit price).  Models the regional price spread MIN-COST exploits;
    #: zones absent from the mapping cost 1.0.
    zone_price_multipliers: Optional[Mapping[str, float]] = None
    #: Optional per-zone (or per-pool, for ``zone@itype`` heterogeneous
    #: traces) serving-capacity weights in reference-replica units.
    #: When set, the replay additionally tracks *effective* readiness —
    #: weighted ready capacity per step — and reports
    #: ``eff_availability``/``eff_ready_series``; zones absent from the
    #: mapping weigh 1.0.  ``None`` (the default) leaves the replay
    #: loop byte-identical to the unweighted code.  Only the discrete
    #: engine supports weights.
    zone_capacity_weights: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.n_tar < 1:
            raise ValueError("n_tar must be >= 1")
        if self.cold_start < 0:
            raise ValueError("negative cold start")
        if self.k <= 0:
            raise ValueError("non-positive cost ratio")
        if self.max_launch_attempts_per_step < 1:
            raise ValueError("need at least one launch attempt per step")
        if self.zone_price_multipliers is not None:
            for zone, multiplier in self.zone_price_multipliers.items():
                if multiplier <= 0:
                    raise ValueError(f"non-positive price multiplier for {zone}")
        if self.zone_capacity_weights is not None:
            for zone, weight in self.zone_capacity_weights.items():
                if weight <= 0:
                    raise ValueError(f"non-positive capacity weight for {zone}")


def _ready_order(inst: "_ReplayInstance") -> tuple[float, int]:
    """Sort key for pending queues under time-varying cold starts."""
    return (inst.ready_at, inst.id)


@dataclass(slots=True)
class _ReplayInstance:
    zone: Optional[str]  # None for on-demand
    spot: bool
    ready_at: float
    id: int = -1  # replica id in telemetry events; -1 when untracked
    ready: bool = False  # promoted once ``ready_at`` has passed
    alive: bool = True  # cleared on preemption/termination (lazy removal)


@dataclass(frozen=True)
class ReplayResult:
    """Per-policy replay outcome."""

    policy: str
    trace: str
    n_tar: int
    availability: float
    relative_cost: float
    spot_cost: float
    od_cost: float
    preemptions: int
    launch_failures: int
    ready_series: np.ndarray  # total ready replicas per step
    step: float
    #: Launched on-demand instances per step (the Dynamic Fallback
    #: footprint); ``None`` for results deserialised from entries that
    #: predate the field.
    od_series: Optional[np.ndarray] = None
    #: Weighted (effective) ready capacity per step, in reference-
    #: replica units, and the fraction of steps it covers ``n_tar``.
    #: Only populated when ``ReplayConfig.zone_capacity_weights`` is
    #: set — heterogeneous fleets; ``None`` otherwise.
    eff_ready_series: Optional[np.ndarray] = None
    eff_availability: Optional[float] = None

    def summary_row(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"{self.policy:<12} {self.trace:<8} avail={self.availability:6.1%} "
            f"cost={self.relative_cost:5.1%} of OD  "
            f"preemptions={self.preemptions}"
        )


class TraceReplayer:
    """Replays one policy over one trace."""

    def __init__(
        self,
        trace: SpotTrace,
        config: Optional[ReplayConfig] = None,
        *,
        seed: int = 0,
        telemetry: Optional[EventBus] = None,
        profiler: Optional[PhaseProfiler] = None,
        cold_start_factors: Optional[Sequence[float]] = None,
        zone_price_factors: Optional[Mapping[str, Sequence[float]]] = None,
        engine: str = "discrete",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown replay engine {engine!r}: expected one of {ENGINES}"
            )
        self.trace = trace
        self.config = config or ReplayConfig()
        self.engine = engine
        self._seed = seed
        self._rng = RngRegistry(seed).stream("replay")
        self.telemetry = telemetry if telemetry is not None else NULL_BUS
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if self.profiler.enabled:
            # Replay phases are stride-sampled (see _PROFILE_STRIDE_MASK);
            # record that on the profiler so reports flag the stats.
            self.profiler.stride = _PROFILE_STRIDE_MASK + 1
        self._next_id = 0
        # Chaos overlay hooks (repro.chaos.overlay): per-step cold-start
        # multipliers and per-zone per-step spot price multipliers.  Both
        # default to None so the no-chaos replay path is untouched.
        if cold_start_factors is not None and len(cold_start_factors) != trace.n_steps:
            raise ValueError(
                f"{len(cold_start_factors)} cold-start factors for "
                f"{trace.n_steps} trace steps"
            )
        if zone_price_factors is not None:
            for zone, factors in zone_price_factors.items():
                if len(factors) != trace.n_steps:
                    raise ValueError(
                        f"zone {zone!r}: {len(factors)} price factors for "
                        f"{trace.n_steps} trace steps"
                    )
        self._cold_start_factors = (
            list(cold_start_factors) if cold_start_factors is not None else None
        )
        self._zone_price_factors = (
            {zone: list(f) for zone, f in zone_price_factors.items()}
            if zone_price_factors is not None
            else None
        )

    def run(self, policy: ServingPolicy, *, spot_zones: Optional[Sequence[str]] = None) -> ReplayResult:
        """Replay ``policy`` over the full trace.

        Every call starts from a pristine replayer: the RNG stream and
        the telemetry replica-id counter are re-derived from the
        constructor seed, so replaying a second policy on the same
        instance sees the exact stream a fresh replayer would.
        """
        # Per-run reset — without it a second run() consumed a shifted
        # RNG stream and continued the replica-id sequence.
        self._rng = RngRegistry(self._seed).stream("replay")
        self._next_id = 0
        if self.engine != "discrete":
            if self.config.zone_capacity_weights is not None:
                raise ValueError(
                    f"engine {self.engine!r} does not support "
                    "zone_capacity_weights; heterogeneous replays run on "
                    "the discrete engine"
                )
            from repro.experiments.fastpath import run_fastpath

            return run_fastpath(self, policy, spot_zones=spot_zones)
        cfg = self.config
        trace = self.trace
        bus = self.telemetry
        rng = self._rng
        zones = list(spot_zones) if spot_zones is not None else list(trace.zone_ids)
        step = trace.step
        base_d = cfg.cold_start
        d = base_d
        chaos_cs = self._cold_start_factors
        n_steps = trace.n_steps
        # Zone capacity rows, extracted once as contiguous arrays and
        # materialised to plain int lists: per-step scalar indexing of a
        # numpy row costs ~100 ns in boxing alone and used to dominate
        # the loop.
        zone_caps: dict[str, list[int]] = {
            zone: np.ascontiguousarray(trace.zone_row(zone)).tolist() for zone in zones
        }
        # Fleet state, all maintained incrementally: per-zone instance
        # lists (insertion-ordered — victim draws index into them),
        # per-zone placement counts, total/ready counters, and FIFO
        # queues of not-yet-ready instances.  The cold start is a
        # constant, so launch order == readiness order and one deque
        # front-pop per promotion replaces the old per-step fleet scans.
        zone_insts: dict[str, list[_ReplayInstance]] = {zone: [] for zone in zones}
        zone_count: dict[str, int] = {zone: 0 for zone in zones}
        # (zone, caps, instances) triples hoisted out of the step loop so
        # the preemption scan does no per-step dict lookups.
        zone_state = [(zone, zone_caps[zone], zone_insts[zone]) for zone in zones]
        spot_total = 0
        spot_ready = 0
        od: list[_ReplayInstance] = []  # launch-ordered; newest at the tail
        od_ready = 0
        # Pending (not-yet-ready) queues.  With a constant cold start,
        # launch order == readiness order and FIFO deques suffice; under
        # a chaos cold-start overlay ready_at is no longer monotone in
        # launch order, so entries are kept sorted by (ready_at, id)
        # instead.  The queue operations are bound once so the step loop
        # is identical either way — and byte-identical to the pre-chaos
        # code when no overlay is attached.
        pending_spot: MutableSequence[_ReplayInstance]
        pending_od: MutableSequence[_ReplayInstance]
        push_spot: Callable[[_ReplayInstance], None]
        push_od: Callable[[_ReplayInstance], None]
        pop_spot: Callable[[], _ReplayInstance]
        pop_od: Callable[[], _ReplayInstance]
        if chaos_cs is None:
            pending_spot = deque()
            pending_od = deque()
            push_spot = pending_spot.append
            push_od = pending_od.append
            pop_spot = pending_spot.popleft
            pop_od = pending_od.popleft
        else:
            pending_spot = []
            pending_od = []
            push_spot = partial(insort, pending_spot, key=_ready_order)
            push_od = partial(insort, pending_od, key=_ready_order)
            pop_spot = partial(pending_spot.pop, 0)
            pop_od = partial(pending_od.pop, 0)
        multipliers = dict(cfg.zone_price_multipliers or {})
        price_rows: Optional[dict[str, list[float]]] = None
        if self._zone_price_factors is not None:
            # Fold the static per-zone multipliers into the per-step
            # chaos factor rows once, so cost accrual does one indexed
            # lookup per occupied zone per step.
            price_rows = {}
            for zone in zones:
                base = multipliers.get(zone, 1.0)
                factors = self._zone_price_factors.get(zone)
                if factors is None:
                    price_rows[zone] = [base] * n_steps
                else:
                    price_rows[zone] = [base * f for f in factors]
        hours = step / 3600.0
        preemptions = 0
        launch_failures = 0
        spot_cost = 0.0
        od_cost = 0.0
        ready_list: list[int] = []
        od_list: list[int] = []
        # Heterogeneous capacity accounting: per-zone *ready* counts
        # (exact integers) are only maintained when weights are set, so
        # the homogeneous path stays byte-identical; the weighted sum is
        # recomputed per step in fixed zone order from those integers —
        # no incremental float accumulation, no dict-order dependence.
        weights = cfg.zone_capacity_weights
        track_eff = weights is not None
        zone_weight: dict[str, float] = (
            {zone: float(weights.get(zone, 1.0)) for zone in zones}
            if weights is not None
            else {}
        )
        zone_ready: dict[str, int] = {zone: 0 for zone in zones}
        eff_list: list[float] = []
        # Pre-bound callables: attribute lookups on ``policy``/``cfg``
        # inside the step loop are measurable at trace scale.
        on_preempted = policy.on_spot_preempted
        on_ready = policy.on_spot_ready
        on_launch_failed = policy.on_spot_launch_failed
        target_mix = policy.target_mix
        select_spot_zone = policy.select_spot_zone
        n_tar = cfg.n_tar
        max_attempts = cfg.max_launch_attempts_per_step
        # Profiler locals: when disabled, each step pays one short-
        # circuited ``and`` plus five false branch checks — no clock
        # reads, no objects, no allocations.
        profiler = self.profiler
        prof_enabled = profiler.enabled
        prof_clock = profiler.clock
        prof_acc = profiler.accumulate if prof_enabled else None
        stride_mask = _PROFILE_STRIDE_MASK
        t_mark = 0.0
        logger.info(
            "replaying %s over %s (%d steps)", policy.name, trace.name, n_steps
        )

        for k_step in range(n_steps):
            now = k_step * step
            bus_enabled = bus.enabled
            do_profile = prof_enabled and (k_step & stride_mask) == 0
            if do_profile:
                t_mark = prof_clock()
            if chaos_cs is not None:
                d = base_d * chaos_cs[k_step]

            # 0. Promote instances whose cold start has elapsed.  The
            # queues are ordered by ready_at; dead entries are skipped.
            while pending_spot and pending_spot[0].ready_at <= now:
                inst = pop_spot()
                if inst.alive:
                    inst.ready = True
                    spot_ready += 1
                    if track_eff:
                        zone_ready[inst.zone] += 1
            while pending_od and pending_od[0].ready_at <= now:
                inst = pop_od()
                if inst.alive:
                    inst.ready = True
                    od_ready += 1
            if do_profile:
                t_now = prof_clock()
                prof_acc("replay.promote", t_now - t_mark)
                t_mark = t_now

            # 1. Inject preemptions: per zone, capacity below placements.
            for zone, caps, in_zone in zone_state:  # repro: draw-parity[victim-sampling]: fastpath must draw the identical victim skeleton
                count = zone_count[zone]
                if count == 0:
                    continue
                excess = count - caps[k_step]
                if excess <= 0:
                    continue
                if excess >= count:
                    # Whole zone wiped (the §2.2 blackout case): every
                    # instance is a victim — no random draw needed.
                    victim_indices = range(count - 1, -1, -1)
                else:
                    # Uniform subset via partial Fisher–Yates driven by
                    # one batched uniform draw — an order of magnitude
                    # cheaper than Generator.choice(replace=False) at
                    # fleet sizes, with the same victim distribution.
                    u = rng.random(excess)
                    idx = list(range(count))
                    for t in range(excess):
                        j = t + int(u[t] * (count - t))
                        idx[t], idx[j] = idx[j], idx[t]
                    victim_indices = sorted(idx[:excess], reverse=True)
                for index in victim_indices:
                    victim = in_zone.pop(index)
                    victim.alive = False
                    if victim.ready:
                        spot_ready -= 1
                        if track_eff:
                            zone_ready[zone] -= 1
                    preemptions += 1
                    if bus_enabled:
                        # Positional construction: kwargs cost ~2x
                        # on this hot path (fields: time,
                        # replica_id, zone, spot).
                        bus.emit(ReplicaPreempted(now, victim.id, zone, True))
                    on_preempted(zone)
                zone_count[zone] = count - excess
                spot_total -= excess
            if do_profile:
                t_now = prof_clock()
                prof_acc("replay.preempt", t_now - t_mark)
                t_mark = t_now

            # 2. Observe and ask the policy for targets.  Readiness is
            # observed once per step: launches later in the step use the
            # same snapshot (their instances are not ready yet anyway
            # unless the cold start is zero).
            ready_spot_obs = spot_ready
            ready_od_obs = od_ready
            n_od = len(od)
            # Positional construction (field order: now, n_tar,
            # spot_launched, spot_ready, od_launched, od_ready,
            # spot_by_zone) — kwargs are measurably slower here.
            obs = Observation(
                now,
                n_tar,
                spot_total,
                ready_spot_obs,
                n_od,
                ready_od_obs,
                {z: c for z, c in zone_count.items() if c},
            )
            mix = target_mix(obs)
            if do_profile:
                t_now = prof_clock()
                prof_acc("replay.policy", t_now - t_mark)
                t_mark = t_now

            # 3. Reconcile spot fleet.  Zones that already returned a
            # capacity error this step are not retried within the step.
            # The observation is rebuilt only after a successful launch —
            # a failed attempt changes nothing the policy can observe
            # except the ``excluded`` set, which is passed separately.
            spot_target = mix.spot_target
            counted = spot_total if mix.count_provisioning_spot else ready_spot_obs
            attempts = 0
            failed_zones: set[str] = set()
            excluded = _EMPTY_FROZENSET
            obs_now = obs
            while counted < spot_target and attempts < max_attempts:
                attempts += 1
                if obs_now is None:
                    obs_now = Observation(
                        now,
                        n_tar,
                        spot_total,
                        ready_spot_obs,
                        n_od,
                        ready_od_obs,
                        {z: c for z, c in zone_count.items() if c},
                    )
                zone = select_spot_zone(obs_now, excluded)
                if zone is None:
                    break
                if zone_count.get(zone, 0) < zone_caps[zone][k_step]:
                    self._next_id += 1
                    inst = _ReplayInstance(
                        zone=zone, spot=True, ready_at=now + d, id=self._next_id
                    )
                    zone_insts[zone].append(inst)
                    zone_count[zone] += 1
                    spot_total += 1
                    if d <= 0:
                        inst.ready = True
                        spot_ready += 1
                        if track_eff:
                            zone_ready[zone] += 1
                    else:
                        push_spot(inst)
                    if bus_enabled:
                        bus.emit(ReplicaLaunch(now, self._next_id, zone, True))
                    on_ready(zone)  # launch succeeded in this zone
                    counted += 1
                    obs_now = None  # placements changed: rebuild lazily
                else:
                    launch_failures += 1
                    failed_zones.add(zone)
                    excluded = frozenset(failed_zones)
                    if bus_enabled:
                        # No replica object ever existed for a failed
                        # attempt at this granularity: id -1.
                        bus.emit(ReplicaLaunchFailed(now, -1, zone, True))
                    on_launch_failed(zone)
            while spot_total > spot_target:
                # Scale down: drop the newest (least likely to be
                # ready) — a single max-scan over the (small) fleet;
                # id breaks ready_at ties towards the latest launch.
                victim = None
                for insts in zone_insts.values():
                    for inst in insts:
                        if victim is None or (inst.ready_at, inst.id) >= (
                            victim.ready_at,
                            victim.id,
                        ):
                            victim = inst
                assert victim is not None  # spot_total > 0
                zone_insts[victim.zone].remove(victim)
                victim.alive = False
                if victim.ready:
                    spot_ready -= 1
                    if track_eff:
                        zone_ready[victim.zone] -= 1
                zone_count[victim.zone] -= 1
                spot_total -= 1
                if bus_enabled:
                    bus.emit(
                        ReplicaTerminated(
                            now, victim.id, victim.zone or "", True, "scale_down"
                        )
                    )

            # 4. Reconcile on-demand fleet (always obtainable, §5.1).
            # ``od`` is launch-ordered, so scale-down pops the newest
            # from the tail.
            while len(od) < mix.od_target:
                inst = _ReplayInstance(zone=None, spot=False, ready_at=now + d)
                od.append(inst)
                if d <= 0:
                    inst.ready = True
                    od_ready += 1
                else:
                    push_od(inst)
            while len(od) > mix.od_target:
                victim = od.pop()
                victim.alive = False
                if victim.ready:
                    od_ready -= 1
            if do_profile:
                t_now = prof_clock()
                prof_acc("replay.reconcile", t_now - t_mark)
                t_mark = t_now

            # 5. Accrue cost and record readiness.
            if price_rows is not None:
                spot_cost += (
                    sum(c * price_rows[z][k_step] for z, c in zone_count.items() if c)
                    * hours
                )  # base multiplier folded into the per-step rows
            elif multipliers:
                spot_cost += (
                    sum(c * multipliers.get(z, 1.0) for z, c in zone_count.items() if c)
                    * hours
                )  # spot replica-hour = 1 unit at the base price
            else:
                spot_cost += spot_total * hours
            od_cost += len(od) * cfg.k * hours
            total_ready = spot_ready + od_ready
            if bus_enabled and (k_step == 0 or total_ready != ready_list[-1]):
                bus.emit(FleetSample(now, total_ready, n_tar))
            ready_list.append(total_ready)
            od_list.append(len(od))
            if track_eff:
                # On-demand replicas are reference instances (weight 1);
                # spot capacity is summed in fixed zone order.
                eff = float(od_ready)
                for zone in zones:
                    count = zone_ready[zone]
                    if count:
                        eff += zone_weight[zone] * count
                eff_list.append(eff)
            if do_profile:
                prof_acc("replay.accrue", prof_clock() - t_mark)

        if bus.enabled:
            # Terminal cost snapshot so report timelines and scorecards
            # see the accrued totals without re-deriving them.
            end = n_steps * step
            bus.emit(CostSnapshot(end, spot_cost, od_cost, spot_cost + od_cost))
        ready_series = np.asarray(ready_list, dtype=int)
        baseline = cfg.k * cfg.n_tar * (n_steps * step / 3600.0)
        eff_series: Optional[np.ndarray] = None
        eff_availability: Optional[float] = None
        if track_eff:
            eff_series = np.asarray(eff_list, dtype=float)
            eff_availability = float((eff_series >= cfg.n_tar).mean())
        return ReplayResult(
            policy=policy.name,
            trace=trace.name,
            n_tar=cfg.n_tar,
            availability=float((ready_series >= cfg.n_tar).mean()),
            relative_cost=(spot_cost + od_cost) / baseline,
            spot_cost=spot_cost,
            od_cost=od_cost,
            preemptions=preemptions,
            launch_failures=launch_failures,
            ready_series=ready_series,
            step=step,
            od_series=np.asarray(od_list, dtype=int),
            eff_ready_series=eff_series,
            eff_availability=eff_availability,
        )


# ----------------------------------------------------------------------
# Latency estimation from ready-replica series (Figs. 14c/d, 15)
# ----------------------------------------------------------------------


def erlang_c_wait(arrival_rate: float, service_time: float, servers: int) -> float:
    """Expected M/M/c queueing delay (Erlang C), in seconds.

    Returns ``inf`` when the system is unstable (ρ ≥ 1) or has no
    servers.
    """
    if servers <= 0:
        return math.inf
    if arrival_rate <= 0:
        return 0.0
    if service_time <= 0:
        return 0.0
    offered = arrival_rate * service_time  # Erlangs
    rho = offered / servers
    if rho >= 1.0:
        return math.inf
    # Erlang C probability of waiting, computed iteratively for stability.
    inv_b = 1.0
    for j in range(1, servers + 1):
        inv_b = 1.0 + inv_b * j / offered
    erlang_b = 1.0 / inv_b
    p_wait = erlang_b / (1.0 - rho * (1.0 - erlang_b))
    return p_wait * service_time / (servers * (1.0 - rho))


def estimate_latency(
    result: ReplayResult,
    workload: Workload,
    *,
    service_time: float = 8.0,
    concurrency_per_replica: int = 8,
    timeout: float = 100.0,
) -> np.ndarray:
    """Per-request latency estimates for a replayed policy.

    Each request sees the replica count of its arrival step.  With
    replicas up, latency = service time + Erlang-C queueing delay at
    the current arrival rate (each replica contributes
    ``concurrency_per_replica`` servers).  With no replicas (downtime),
    the request waits for the next step with capacity and times out at
    ``timeout`` — failed requests are reported *at* the timeout, which
    matches how the paper folds failures into tail latency.

    Vectorised: arrivals are binned per step with ``np.bincount``, the
    downtime wait comes from a precomputed next-step-with-capacity
    index, and the Erlang-C delay is evaluated once per arrival step
    instead of once per request — O(steps + requests) total, where the
    per-request reference is O(requests × steps) on downtime-heavy
    series.
    """
    if service_time <= 0 or timeout <= 0:
        raise ValueError("service_time and timeout must be positive")
    ready = result.ready_series
    step = result.step
    n = len(ready)
    horizon = n * step
    arrivals = workload.arrival_times  # sorted by Workload's contract
    arrivals = arrivals[arrivals < horizon]
    latencies = np.empty(len(arrivals))
    if len(arrivals) == 0:
        return latencies
    arrival_steps = (arrivals // step).astype(np.int64)
    # Arrival rate per step, for the Erlang-C load.
    rates = np.bincount(arrival_steps, minlength=n) / step

    # nxt[k]: first step >= k with capacity (n when there is none).
    indices = np.arange(n, dtype=np.int64)
    nxt = np.where(ready > 0, indices, n)
    nxt = np.minimum.accumulate(nxt[::-1])[::-1]

    # waits[m]: the downtime wait after skipping m empty steps,
    # accumulated additively (m × step up to float association) exactly
    # as the per-request scan would; m_timeout is the first m at which
    # the wait reaches the timeout.
    waits = np.zeros(n + 1)
    np.add.accumulate(np.full(n, step), out=waits[1:])
    m_timeout = int(np.searchsorted(waits, timeout, side="left"))

    # Latency is a function of the arrival step alone, so evaluate it
    # once per occupied step and gather.  The Erlang-C evaluation is
    # further memoised by (rate, servers): rates are integer arrival
    # counts over a fixed step and servers are quantised by replica
    # count, so long series collapse to a handful of distinct pairs and
    # the O(servers) iterative sum runs once per pair instead of once
    # per occupied step.  Same scalar function → bit-identical results.
    lat_by_step = np.full(n, float(timeout))
    wait_cache: dict[tuple[float, int], float] = {}
    for k in np.unique(arrival_steps):
        j = int(nxt[k])
        if j >= n or j - k >= m_timeout:
            continue  # no capacity before the timeout: reported at it
        servers = int(ready[j]) * concurrency_per_replica
        cache_key = (float(rates[j]), servers)
        queue_wait = wait_cache.get(cache_key)
        if queue_wait is None:
            queue_wait = erlang_c_wait(cache_key[0], service_time, servers)
            wait_cache[cache_key] = queue_wait
        total = waits[j - k] + queue_wait + service_time
        lat_by_step[k] = min(total, timeout)
    latencies[:] = lat_by_step[arrival_steps]
    return latencies


def _estimate_latency_reference(
    result: ReplayResult,
    workload: Workload,
    *,
    service_time: float = 8.0,
    concurrency_per_replica: int = 8,
    timeout: float = 100.0,
) -> np.ndarray:
    """Per-request scalar reference for :func:`estimate_latency`.

    Kept verbatim from before the vectorisation so property tests can
    assert the fast path is numerically identical.  O(requests × steps)
    in the worst case — do not use outside tests.
    """
    if service_time <= 0 or timeout <= 0:
        raise ValueError("service_time and timeout must be positive")
    ready = result.ready_series
    step = result.step
    horizon = len(ready) * step
    rates = np.zeros(len(ready))
    for request in workload:
        if request.arrival_time < horizon:
            rates[int(request.arrival_time // step)] += 1.0
    rates /= step

    latencies = np.empty(len([r for r in workload if r.arrival_time < horizon]))
    index = 0
    for request in workload:
        if request.arrival_time >= horizon:
            break
        k_step = int(request.arrival_time // step)
        waited = 0.0
        j = k_step
        while j < len(ready) and ready[j] == 0 and waited < timeout:
            waited += step
            j += 1
        if waited >= timeout or j >= len(ready):
            latencies[index] = timeout
        else:
            servers = int(ready[j]) * concurrency_per_replica
            queue_wait = erlang_c_wait(rates[j], service_time, servers)
            total = waited + queue_wait + service_time
            latencies[index] = min(total, timeout)
        index += 1
    return latencies
