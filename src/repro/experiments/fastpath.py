"""Numpy fluid/flow data plane for trace replay — the fast engines.

:class:`~repro.experiments.replay.TraceReplayer` dispatches here for
``engine="vectorized"`` and ``engine="hybrid"``.  Fleet state lives in
per-zone integer/float arrays instead of per-instance Python objects:

* per-zone parallel arrays of replica ids (sorted ascending — ids are
  issued monotonically and removals preserve order), ``ready_at``
  stamps and readiness flags, with per-zone counts alongside;
* preemption excess straight from ``capacity - count`` row math, with
  victim subsets drawn by the *same* partial Fisher–Yates procedure —
  one ``rng.random(excess)`` batch per preempting zone — so the RNG
  stream consumption matches the discrete oracle draw for draw;
* readiness promotion via ring buffers bucketed by ready-step: each
  pending launch is filed under the first step at which its
  ``ready_at`` has passed, and promotion pops whole buckets instead of
  polling a queue per step;
* cost accrual via per-step products against the folded price rows
  (static zone multipliers × chaos price factors), accumulated with
  ``np.add.accumulate`` — a strict left fold, so the float result is
  bit-identical to the discrete ``cost += x`` loop.

On top of the array stepper sits the hybrid dispatcher: the trace is
segmented into *churn windows* — steps around capacity crossings,
policy mix changes and chaos injection edges, which run the exact
discrete per-step semantics (identical victim-sampling RNG draws,
identical telemetry events) — and *quiescent windows*, where capacity
sits comfortably above placements and nothing is pending, which are
fast-forwarded in closed form: readiness/on-demand series are constant
slice fills and both cost series advance by a seeded sequential
accumulate.  A window is quiescent only when the step before it
completed with *zero* fleet activity (no promotions, preemptions,
launch attempts, scale-downs or on-demand changes) and the policy
declares :attr:`~repro.serving.policy.ServingPolicy.stationary_decisions`
(with no audit log attached), in which case the policy provably makes
the same no-op decision at every skipped step.  The window ends at the
earliest of: the next pending-readiness bucket, the next capacity
crossing below any occupied zone's count (cached ``capacity < count``
index arrays + ``searchsorted``), or the trace horizon.

Engines:

* ``"hybrid"`` — always safe.  Fast-forwards when it can, degrades to
  exact per-step array stepping when the policy is not stationary
  (e.g. MArk's sliding prediction window) or a step saw activity.
* ``"vectorized"`` — the strict fastpath: identical to hybrid but
  *requires* a fast-forwardable policy and raises ``ValueError``
  otherwise, so sweeps that depend on the ≥1M steps/s path fail loudly
  instead of silently degrading.

Both produce byte-identical :class:`~repro.experiments.replay.ReplayResult`
fields (availability, costs, preemption/launch-failure counts, ready
and on-demand series) and identical telemetry event content to the
discrete oracle — property-tested in ``tests/properties`` over random
traces, policies and chaos overlays.  Because results are engine-
independent, :class:`~repro.experiments.results.ReplayCache` keys do
not include the engine.

Known caveat: under sustained capacity shortage (total capacity below
the spot target) the launch loop runs — and fails — every step, so
every step is a churn step and the hybrid engine converges to the
array stepper's per-step speed.  Fast-forwarding through that regime
would require proving the policy/placer state cycles, which is
deliberately out of scope.
"""

from __future__ import annotations

import logging
import math
from bisect import insort
from collections import deque
from functools import partial
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.experiments.replay import (
    _EMPTY_FROZENSET,
    ReplayResult,
    _ReplayInstance,
    _ready_order,
)
from repro.serving.policy import Observation, ServingPolicy
from repro.telemetry.events import (
    CostSnapshot,
    FleetSample,
    ReplicaLaunch,
    ReplicaLaunchFailed,
    ReplicaPreempted,
    ReplicaTerminated,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.experiments.replay import TraceReplayer

__all__ = ["bucket_step", "run_fastpath", "supports_fluid"]

logger = logging.getLogger(__name__)


def bucket_step(ready_at: float, step: float) -> int:
    """First step index ``s`` with ``s * step >= ready_at``.

    This is the step at which the discrete loop's ``ready_at <= now``
    promotion check first passes, computed with explicit fix-ups so
    float rounding in the division can never disagree with the
    comparison the oracle actually performs.
    """
    s = int(math.ceil(ready_at / step))
    while s * step < ready_at:
        s += 1
    while s > 0 and (s - 1) * step >= ready_at:
        s -= 1
    return s


def supports_fluid(policy: ServingPolicy) -> bool:
    """Whether quiescent windows may be fast-forwarded for ``policy``.

    Requires the policy's stationarity declaration *and* no attached
    audit log — ``PolicyAuditLog.touch`` keys on ``obs.now``, so an
    audited policy must be consulted every step.
    """
    return bool(getattr(policy, "stationary_decisions", False)) and policy.audit is None


def run_fastpath(
    replayer: "TraceReplayer",
    policy: ServingPolicy,
    *,
    spot_zones: Optional[Sequence[str]] = None,
) -> ReplayResult:
    """Replay ``policy`` on the array data plane (vectorized/hybrid)."""
    cfg = replayer.config
    trace = replayer.trace
    bus = replayer.telemetry
    rng = replayer._rng
    profiler = replayer.profiler
    prof_enabled = profiler.enabled

    fluid_ok = supports_fluid(policy)
    if replayer.engine == "vectorized" and not fluid_ok:
        raise ValueError(
            f"policy {policy.name!r} cannot run on the strict vectorized "
            f"engine: it does not declare stationary_decisions (or has an "
            f"audit log attached), so quiescent windows cannot be "
            f"fast-forwarded — use engine='hybrid' for exact per-step "
            f"processing with opportunistic fast-forwarding"
        )

    zones = list(spot_zones) if spot_zones is not None else list(trace.zone_ids)
    n_zones = len(zones)
    zone_index = {zone: i for i, zone in enumerate(zones)}
    step = trace.step
    n_steps = trace.n_steps
    base_d = cfg.cold_start
    d = base_d
    chaos_cs = replayer._cold_start_factors
    # Capacity rows both ways: numpy rows feed the crossing queries and
    # plain int lists feed scalar indexing on churn steps (boxing a
    # numpy scalar per access costs ~100 ns).
    caps_np = [np.ascontiguousarray(trace.zone_row(zone)) for zone in zones]
    caps_list: list[list[int]] = [row.tolist() for row in caps_np]

    # Per-zone array fleet (amortised-doubling storage).  Ids ascend
    # within each zone, so bucket promotions locate entries by
    # searchsorted and a missing id means the replica died.
    fleet_cap = 8
    z_ids = [np.zeros(fleet_cap, dtype=np.int64) for _ in range(n_zones)]
    z_ready_at = [np.zeros(fleet_cap) for _ in range(n_zones)]
    z_ready = [np.zeros(fleet_cap, dtype=bool) for _ in range(n_zones)]
    sizes = [0] * n_zones
    spot_total = 0
    spot_ready = 0

    # Pending-readiness ring buffers: ready-step -> [(zone_idx, id)].
    buckets: dict[int, list[tuple[int, int]]] = {}
    bucket_heap: list[int] = []

    # The on-demand fleet reuses the oracle's object representation
    # verbatim — on-demand churn is rare and always obtainable, so the
    # arrays buy nothing and sharing the code shares its semantics.
    od: list[_ReplayInstance] = []
    od_ready = 0
    if chaos_cs is None:
        pending_od: list[_ReplayInstance] | deque[_ReplayInstance] = deque()
        push_od = pending_od.append
        pop_od = pending_od.popleft
    else:
        pending_od = []
        push_od = partial(insort, pending_od, key=_ready_order)
        pop_od = partial(pending_od.pop, 0)

    # Price rows folded exactly as the discrete engine folds them, kept
    # as lists (churn-step scalar access) and float64 rows (fluid
    # window products).
    multipliers = dict(cfg.zone_price_multipliers or {})
    mult_by_zone = [multipliers.get(zone, 1.0) for zone in zones]
    price_rows: Optional[list[list[float]]] = None
    price_np: Optional[list[np.ndarray]] = None
    if replayer._zone_price_factors is not None:
        price_rows = []
        price_np = []
        for zi, zone in enumerate(zones):
            factors = replayer._zone_price_factors.get(zone)
            if factors is None:
                row = [mult_by_zone[zi]] * n_steps
            else:
                row = [mult_by_zone[zi] * f for f in factors]
            price_rows.append(row)
            price_np.append(np.asarray(row))

    # capacity-crossing cache: (zone_idx, count) -> sorted step indices
    # where that zone's capacity sits below ``count``.
    below_cache: dict[tuple[int, int], np.ndarray] = {}

    def next_crossing(zi: int, count: int, after: int) -> int:
        key = (zi, count)
        arr = below_cache.get(key)
        if arr is None:
            arr = np.flatnonzero(caps_np[zi] < count)
            below_cache[key] = arr
        pos = int(np.searchsorted(arr, after))
        return int(arr[pos]) if pos < len(arr) else n_steps

    hours = step / 3600.0
    preemptions = 0
    launch_failures = 0
    spot_cost = 0.0
    od_cost = 0.0
    ready_series = np.zeros(n_steps, dtype=int)
    od_series = np.zeros(n_steps, dtype=int)
    prev_ready = -1
    next_id = 0

    on_preempted = policy.on_spot_preempted
    on_ready = policy.on_spot_ready
    on_launch_failed = policy.on_spot_launch_failed
    target_mix = policy.target_mix
    select_spot_zone = policy.select_spot_zone
    n_tar = cfg.n_tar
    max_attempts = cfg.max_launch_attempts_per_step

    prof_clock = profiler.clock
    fluid_time = 0.0
    t_run = prof_clock() if prof_enabled else 0.0

    logger.info(
        "replaying %s over %s (%d steps, %s engine)",
        policy.name,
        trace.name,
        n_steps,
        replayer.engine,
    )

    k = 0
    while k < n_steps:
        now = k * step
        bus_enabled = bus.enabled
        if chaos_cs is not None:
            d = base_d * chaos_cs[k]
        activity = False

        # 0. Promote pending replicas whose ready step has arrived.
        # Bucket pops replace the oracle's queue polling; entries whose
        # id is gone from the zone arrays died in the meantime.
        while bucket_heap and bucket_heap[0] <= k:
            for zi, rid in buckets.pop(heappop(bucket_heap)):
                n_i = sizes[zi]
                ids_i = z_ids[zi]
                pos = int(np.searchsorted(ids_i[:n_i], rid))
                if pos < n_i and ids_i[pos] == rid and not z_ready[zi][pos]:
                    z_ready[zi][pos] = True
                    spot_ready += 1
                    activity = True
        while pending_od and pending_od[0].ready_at <= now:
            inst = pop_od()
            if inst.alive:
                inst.ready = True
                od_ready += 1
                activity = True

        # 1. Preemptions from capacity - count row math; victim subsets
        # drawn by the identical partial Fisher–Yates procedure (and
        # the identical whole-zone wipe shortcut) as the oracle.
        for zi in range(n_zones):  # repro: draw-parity[victim-sampling]: oracle (replay.py) must draw the identical victim skeleton
            count = sizes[zi]
            if count == 0:
                continue
            excess = count - caps_list[zi][k]
            if excess <= 0:
                continue
            activity = True
            ids_i = z_ids[zi]
            rd_i = z_ready[zi]
            if excess >= count:
                victim_positions: Sequence[int] = range(count - 1, -1, -1)
            else:
                u = rng.random(excess)
                idx = list(range(count))
                for t in range(excess):
                    j = t + int(u[t] * (count - t))
                    idx[t], idx[j] = idx[j], idx[t]
                victim_positions = sorted(idx[:excess], reverse=True)
            zone = zones[zi]
            for pos in victim_positions:
                if rd_i[pos]:
                    spot_ready -= 1
                preemptions += 1
                if bus_enabled:
                    bus.emit(ReplicaPreempted(now, int(ids_i[pos]), zone, True))
                on_preempted(zone)
            remaining = count - excess
            if remaining:
                keep = np.ones(count, dtype=bool)
                keep[list(victim_positions)] = False
                ids_i[:remaining] = ids_i[:count][keep]
                z_ready_at[zi][:remaining] = z_ready_at[zi][:count][keep]
                rd_i[:remaining] = rd_i[:count][keep]
            sizes[zi] = remaining
            spot_total -= excess

        # 2. Observe and ask the policy for targets.
        ready_spot_obs = spot_ready
        ready_od_obs = od_ready
        n_od = len(od)
        obs = Observation(
            now,
            n_tar,
            spot_total,
            ready_spot_obs,
            n_od,
            ready_od_obs,
            {zones[i]: sizes[i] for i in range(n_zones) if sizes[i]},
        )
        mix = target_mix(obs)

        # 3. Reconcile the spot fleet — the loop is line-for-line the
        # oracle's, over array state.  Entering it at all (even for a
        # fruitless attempt) counts as activity: selection may mutate
        # placer state (e.g. round-robin rotation), so skipped steps
        # must be steps where the oracle would not have called it.
        spot_target = mix.spot_target
        counted = spot_total if mix.count_provisioning_spot else ready_spot_obs
        if counted < spot_target:
            activity = True
        attempts = 0
        failed_zones: set[str] = set()
        excluded = _EMPTY_FROZENSET
        obs_now: Optional[Observation] = obs
        while counted < spot_target and attempts < max_attempts:
            attempts += 1
            if obs_now is None:
                obs_now = Observation(
                    now,
                    n_tar,
                    spot_total,
                    ready_spot_obs,
                    n_od,
                    ready_od_obs,
                    {zones[i]: sizes[i] for i in range(n_zones) if sizes[i]},
                )
            zone = select_spot_zone(obs_now, excluded)
            if zone is None:
                break
            zi = zone_index[zone]  # KeyError for unknown zones, like the oracle
            n_i = sizes[zi]
            if n_i < caps_list[zi][k]:
                next_id += 1
                if n_i == len(z_ids[zi]):
                    for arrs in (z_ids, z_ready_at, z_ready):
                        grown = np.zeros(2 * n_i, dtype=arrs[zi].dtype)
                        grown[:n_i] = arrs[zi]
                        arrs[zi] = grown
                ready_at = now + d
                z_ids[zi][n_i] = next_id
                z_ready_at[zi][n_i] = ready_at
                if d <= 0:
                    z_ready[zi][n_i] = True
                    spot_ready += 1
                else:
                    z_ready[zi][n_i] = False
                    s = bucket_step(ready_at, step)
                    bucket = buckets.get(s)
                    if bucket is None:
                        buckets[s] = [(zi, next_id)]
                        heappush(bucket_heap, s)
                    else:
                        bucket.append((zi, next_id))
                sizes[zi] = n_i + 1
                spot_total += 1
                if bus_enabled:
                    bus.emit(ReplicaLaunch(now, next_id, zone, True))
                on_ready(zone)
                counted += 1
                obs_now = None
            else:
                launch_failures += 1
                failed_zones.add(zone)
                excluded = frozenset(failed_zones)
                if bus_enabled:
                    bus.emit(ReplicaLaunchFailed(now, -1, zone, True))
                on_launch_failed(zone)
        while spot_total > spot_target:
            activity = True
            # Scale down the unique max of (ready_at, id); ids ascend
            # within a zone, so the last occurrence of the zone's max
            # ready_at is its (ready_at, id) maximum.
            best_ra = -math.inf
            best_id = -1
            best_zi = -1
            best_pos = -1
            for zi in range(n_zones):
                n_i = sizes[zi]
                if n_i == 0:
                    continue
                ra_i = z_ready_at[zi][:n_i]
                pos = n_i - 1 - int(np.argmax(ra_i[::-1]))
                ra_v = float(ra_i[pos])
                id_v = int(z_ids[zi][pos])
                if ra_v > best_ra or (ra_v == best_ra and id_v > best_id):
                    best_ra, best_id, best_zi, best_pos = ra_v, id_v, zi, pos
            zi, pos = best_zi, best_pos
            n_i = sizes[zi]
            if z_ready[zi][pos]:
                spot_ready -= 1
            z_ids[zi][pos : n_i - 1] = z_ids[zi][pos + 1 : n_i].copy()
            z_ready_at[zi][pos : n_i - 1] = z_ready_at[zi][pos + 1 : n_i].copy()
            z_ready[zi][pos : n_i - 1] = z_ready[zi][pos + 1 : n_i].copy()
            sizes[zi] = n_i - 1
            spot_total -= 1
            if bus_enabled:
                bus.emit(ReplicaTerminated(now, best_id, zones[zi], True, "scale_down"))

        # 4. Reconcile the on-demand fleet (oracle code, shared types).
        while len(od) < mix.od_target:
            activity = True
            inst = _ReplayInstance(zone=None, spot=False, ready_at=now + d)
            od.append(inst)
            if d <= 0:
                inst.ready = True
                od_ready += 1
            else:
                push_od(inst)
        while len(od) > mix.od_target:
            activity = True
            victim = od.pop()
            victim.alive = False
            if victim.ready:
                od_ready -= 1

        # 5. Accrue cost and record readiness — same fold order and
        # expressions as the oracle, so the floats agree bit for bit.
        if price_rows is not None:
            spot_cost += (
                sum(sizes[i] * price_rows[i][k] for i in range(n_zones) if sizes[i])
                * hours
            )
        elif multipliers:
            spot_cost += (
                sum(sizes[i] * mult_by_zone[i] for i in range(n_zones) if sizes[i])
                * hours
            )
        else:
            spot_cost += spot_total * hours
        od_cost += len(od) * cfg.k * hours
        total_ready = spot_ready + od_ready
        if bus_enabled and (k == 0 or total_ready != prev_ready):
            bus.emit(FleetSample(now, total_ready, n_tar))
        prev_ready = total_ready
        ready_series[k] = total_ready
        od_series[k] = len(od)

        if activity or not fluid_ok:
            k += 1
            continue

        # Quiescent window: this step completed with zero fleet
        # activity under a stationary policy, so every step until the
        # next pending-readiness bucket or capacity crossing repeats
        # the same no-op decision — fast-forward it in closed form.
        nxt = bucket_heap[0] if bucket_heap else n_steps
        if pending_od:
            od_bucket = bucket_step(pending_od[0].ready_at, step)
            if od_bucket < nxt:
                nxt = od_bucket
        for zi in range(n_zones):
            count = sizes[zi]
            if count:
                crossing = next_crossing(zi, count, k + 1)
                if crossing < nxt:
                    nxt = crossing
        if nxt > n_steps:
            nxt = n_steps
        if nxt <= k + 1:
            k += 1
            continue
        t_fluid = prof_clock() if prof_enabled else 0.0
        lo, hi = k + 1, nxt
        width = hi - lo
        ready_series[lo:hi] = total_ready
        od_series[lo:hi] = len(od)
        # Seeded sequential accumulate: buf[0] carries the running
        # total and np.add.accumulate applies the per-step adds in
        # order — the exact float left fold of the discrete loop.
        buf = np.empty(width + 1)
        if price_np is not None:
            contrib = np.zeros(width)
            for i in range(n_zones):
                if sizes[i]:
                    contrib = contrib + sizes[i] * price_np[i][lo:hi]
            buf[1:] = contrib * hours
        elif multipliers:
            buf[1:] = (
                sum(sizes[i] * mult_by_zone[i] for i in range(n_zones) if sizes[i])
                * hours
            )
        else:
            buf[1:] = spot_total * hours
        buf[0] = spot_cost
        np.add.accumulate(buf, out=buf)
        spot_cost = float(buf[-1])
        buf[0] = od_cost
        buf[1:] = len(od) * cfg.k * hours
        np.add.accumulate(buf, out=buf)
        od_cost = float(buf[-1])
        if prof_enabled:
            fluid_time += prof_clock() - t_fluid
        k = nxt

    if prof_enabled:
        profiler.accumulate("replay.fastpath", prof_clock() - t_run)
        profiler.accumulate("replay.fastpath.fluid", fluid_time)

    replayer._next_id = next_id
    if bus.enabled:
        end = n_steps * step
        bus.emit(CostSnapshot(end, spot_cost, od_cost, spot_cost + od_cost))
    baseline = cfg.k * cfg.n_tar * (n_steps * step / 3600.0)
    return ReplayResult(
        policy=policy.name,
        trace=trace.name,
        n_tar=cfg.n_tar,
        availability=float((ready_series >= cfg.n_tar).mean()),
        relative_cost=(spot_cost + od_cost) / baseline,
        spot_cost=spot_cost,
        od_cost=od_cost,
        preemptions=preemptions,
        launch_failures=launch_failures,
        ready_series=ready_series,
        step=step,
        od_series=od_series,
        # The fastpath rejects zone_capacity_weights up front (run()
        # raises before dispatching here), so the effective-capacity
        # fields are always untracked on this engine path.
        eff_ready_series=None,
        eff_availability=None,
    )
