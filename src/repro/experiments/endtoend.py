"""End-to-end system comparison harness (§5.1).

Reproduces the paper's cloud experiments in simulation: every compared
system serves the *same* workload replay against the *same* spot
capacity trace (the paper runs all systems concurrently on the cloud for
fairness; we achieve the same by sharing the trace and workload seeds).

Systems, as in §5.1:

* **SkyServe** — SpotHedge over three regions (us-east-2, us-west-2,
  eu-central-1);
* **ASG** — AWS Auto-scaling Group: static 10% on-demand pool, even
  spread, single region (us-west-2);
* **AWSSpot** — pure-spot node pool, even spread, single region;
* **MArk** — predictive autoscaling, spot-only, single region.

Two scenarios mirror the paper's grouping: *Spot Available* (us-west-2
obtainability 91–100%) and *Spot Volatile* (45–46%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines import ASGPolicy, AWSSpotPolicy, MArkPolicy
from repro.cloud.catalog import Catalog, default_catalog
from repro.cloud.topology import Topology, default_topology
from repro.cloud.traces import HOUR, SpotTrace, TraceZoneSpec, make_correlated_trace
from repro.core.spothedge import spothedge
from repro.serving.inference import ModelProfile, llama2_70b_profile
from repro.serving.policy import ServingPolicy
from repro.serving.service import ServiceReport, SkyService
from repro.serving.spec import ReplicaPolicyConfig, ResourceSpec, ServiceSpec
from repro.sim.metrics import TimeSeries
from repro.telemetry.events import EventBus
from repro.workloads.request import Workload

__all__ = [
    "EndToEndResult",
    "SKYSERVE_REGIONS",
    "SINGLE_REGION",
    "e2e_trace",
    "run_comparison",
    "run_system",
    "spot_zone_costs",
    "standard_policies",
]

#: Regions SkyServe spans in §5.1.
SKYSERVE_REGIONS = ("aws:us-east-2", "aws:us-west-2", "aws:eu-central-1")
#: Region all single-region baselines use (most quota, lowest cost).
SINGLE_REGION = "aws:us-west-2"


def e2e_trace(
    scenario: str,
    *,
    topology: Optional[Topology] = None,
    duration: float = 6 * HOUR,
    capacity: int = 8,
    seed: int = 0,
) -> SpotTrace:
    """Spot capacity trace for the end-to-end comparison.

    ``scenario`` is ``"available"`` (us-west-2 obtainability ≥ 90%, other
    regions good) or ``"volatile"`` (us-west-2 obtainability ~45%, other
    regions intermittently better) — the two §5.1 groups.
    """
    topology = topology or default_topology()
    zones = []
    for region in SKYSERVE_REGIONS:
        zones.extend(topology.zones_in_region(region))
    if scenario == "available":
        durations = {
            "aws:us-east-2": (14 * HOUR, 0.6 * HOUR),
            "aws:us-west-2": (20 * HOUR, 0.5 * HOUR),
            "aws:eu-central-1": (14 * HOUR, 0.6 * HOUR),
        }
        shock_rate = 1.0 / (24 * HOUR)
    elif scenario == "volatile":
        # us-west-2 obtainability ~45% with region-wide blackouts (§2.2
        # observed the whole region out of spot capacity ~21% of time).
        durations = {
            "aws:us-east-2": (4 * HOUR, 2 * HOUR),
            "aws:us-west-2": (1.2 * HOUR, 1.2 * HOUR),
            "aws:eu-central-1": (5 * HOUR, 2 * HOUR),
        }
        shock_rate = 1.0 / (3 * HOUR)
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    specs = [
        TraceZoneSpec(
            zone.id,
            mean_up=durations[zone.region_id][0],
            mean_down=durations[zone.region_id][1],
            capacity_up=capacity,
        )
        for zone in zones
    ]
    return make_correlated_trace(
        f"e2e-{scenario}",
        specs,
        duration=duration,
        region_shock_rate=shock_rate,
        region_shock_mean_duration=1.0 * HOUR,
        region_shock_affect_prob=0.97,
        seed=seed,
    )


def spot_zone_costs(
    zones: Sequence[str],
    accelerator: str,
    *,
    catalog: Optional[Catalog] = None,
) -> dict[str, float]:
    """Per-zone hourly spot price for the cheapest matching type — the
    cost signal Alg. 1's MIN-COST uses (polled via cloud APIs in §4)."""
    catalog = catalog or default_catalog()
    by_cloud: dict[str, float] = {}
    for itype in catalog.with_accelerator(accelerator):
        price = by_cloud.get(itype.cloud)
        if price is None or itype.spot_hourly < price:
            by_cloud[itype.cloud] = itype.spot_hourly
    costs = {}
    for zone in zones:
        cloud = zone.split(":")[0]
        if cloud in by_cloud:
            costs[zone] = by_cloud[cloud]
    return costs


def standard_policies(
    trace: SpotTrace,
    *,
    accelerator: str = "A10G",
    catalog: Optional[Catalog] = None,
    num_overprovision: int = 2,
) -> dict[str, ServingPolicy]:
    """Fresh policy instances for the four compared systems."""
    single_region_zones = [
        z for z in trace.zone_ids if z.rsplit(":", 1)[0] == SINGLE_REGION
    ]
    if not single_region_zones:
        raise ValueError(f"trace lacks zones in {SINGLE_REGION}")
    all_zones = list(trace.zone_ids)
    costs_all = spot_zone_costs(all_zones, accelerator, catalog=catalog)
    costs_single = {z: costs_all[z] for z in single_region_zones}
    return {
        "SkyServe": spothedge(
            all_zones, zone_costs=costs_all, num_overprovision=num_overprovision
        ),
        "ASG": ASGPolicy(single_region_zones, zone_costs=costs_single),
        "AWSSpot": AWSSpotPolicy(single_region_zones, zone_costs=costs_single),
        "MArk": MArkPolicy(single_region_zones, zone_costs=costs_single),
    }


@dataclass(frozen=True)
class EndToEndResult:
    """One system's end-to-end run plus its replica timelines."""

    report: ServiceReport
    ready_spot: TimeSeries
    ready_od: TimeSeries
    provisioning_spot: TimeSeries


def run_system(
    policy: ServingPolicy,
    trace: SpotTrace,
    workload: Workload,
    duration: float,
    *,
    spec: Optional[ServiceSpec] = None,
    profile: Optional[ModelProfile] = None,
    topology: Optional[Topology] = None,
    catalog: Optional[Catalog] = None,
    seed: int = 0,
    single_region: Optional[str] = None,
    telemetry: Optional[EventBus] = None,
) -> EndToEndResult:
    """Deploy one system on the simulated cloud and serve the workload.

    ``single_region`` restricts the service spec's failure domains (the
    baselines launch only in us-west-2).  ``telemetry`` (an
    :class:`~repro.telemetry.events.EventBus` with sinks attached)
    captures the full event stream of the run.
    """
    if spec is None:
        any_of = ()
        if single_region is not None:
            from repro.serving.spec import DomainFilter

            cloud, region = single_region.split(":")
            any_of = (DomainFilter(cloud=cloud, region=region),)
        spec = ServiceSpec(
            name=f"e2e-{policy.name}",
            replica_policy=ReplicaPolicyConfig(fixed_target=4),
            resources=ResourceSpec(accelerator="A10G", any_of=any_of),
            request_timeout=100.0,
        )
    service = SkyService(
        spec,
        policy,
        trace,
        profile=profile or llama2_70b_profile(),
        topology=topology,
        catalog=catalog,
        seed=seed,
        telemetry=telemetry,
    )
    report = service.run(workload, duration)
    return EndToEndResult(
        report=report,
        ready_spot=service.controller.ready_spot_series,
        ready_od=service.controller.ready_od_series,
        provisioning_spot=service.controller.provisioning_spot_series,
    )


def run_comparison(
    scenario: str,
    workload: Workload,
    duration: float,
    *,
    accelerator: str = "A10G",
    profile: Optional[ModelProfile] = None,
    seed: int = 0,
    fixed_target: int = 4,
    request_timeout: float = 100.0,
    workers: int = 1,
) -> dict[str, EndToEndResult]:
    """Run all four systems on the same trace and workload (Fig. 9/13).

    The systems are independent simulations over the shared trace, so
    ``workers > 1`` runs them on a process pool; each system's
    simulation is seeded identically either way, and the result mapping
    keeps the fixed system order, so output does not depend on
    ``workers``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    trace = e2e_trace(scenario, seed=seed, duration=duration)
    policies = standard_policies(trace, accelerator=accelerator)
    from repro.serving.spec import DomainFilter

    jobs: list[tuple[str, ServingPolicy, ServiceSpec]] = []
    for name, policy in policies.items():
        if name == "SkyServe":
            any_of = tuple(
                DomainFilter(cloud=r.split(":")[0], region=r.split(":")[1])
                for r in SKYSERVE_REGIONS
            )
        else:
            cloud, region = SINGLE_REGION.split(":")
            any_of = (DomainFilter(cloud=cloud, region=region),)
        spec = ServiceSpec(
            name=f"e2e-{name}",
            replica_policy=ReplicaPolicyConfig(fixed_target=fixed_target),
            resources=ResourceSpec(accelerator=accelerator, any_of=any_of),
            request_timeout=request_timeout,
        )
        jobs.append((name, policy, spec))

    results: dict[str, EndToEndResult] = {}
    if workers == 1:
        for name, policy, spec in jobs:
            results[name] = run_system(
                policy, trace, workload, duration, spec=spec, profile=profile, seed=seed
            )
        return results

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        futures = [
            (
                name,
                pool.submit(
                    run_system,
                    policy,
                    trace,
                    workload,
                    duration,
                    spec=spec,
                    profile=profile,
                    seed=seed,
                ),
            )
            for name, policy, spec in jobs
        ]
        for name, future in futures:
            results[name] = future.result()
    return results
