"""Experiment harnesses: §5.1 end-to-end serving and §5.2 trace replay."""

from repro.experiments.endtoend import (
    SINGLE_REGION,
    SKYSERVE_REGIONS,
    EndToEndResult,
    e2e_trace,
    run_comparison,
    run_system,
    spot_zone_costs,
    standard_policies,
)
from repro.experiments.fastpath import run_fastpath, supports_fluid
from repro.experiments.hetero import (
    FLEETS,
    frontier_to_json,
    pareto_fleets,
    run_fleet,
    run_frontier,
)
from repro.experiments.replay import (
    ENGINES,
    ReplayConfig,
    ReplayResult,
    TraceReplayer,
    erlang_c_wait,
    estimate_latency,
)
from repro.experiments.results import (
    ReplayCache,
    ResultStore,
    replay_result_from_dict,
    replay_result_to_dict,
    service_report_to_dict,
)
from repro.experiments.sweep import SweepPoint, grid_sweep

__all__ = [
    "ENGINES",
    "EndToEndResult",
    "FLEETS",
    "ReplayCache",
    "ReplayConfig",
    "ReplayResult",
    "ResultStore",
    "SINGLE_REGION",
    "SweepPoint",
    "SKYSERVE_REGIONS",
    "TraceReplayer",
    "e2e_trace",
    "erlang_c_wait",
    "estimate_latency",
    "frontier_to_json",
    "pareto_fleets",
    "replay_result_from_dict",
    "replay_result_to_dict",
    "run_comparison",
    "run_fastpath",
    "run_fleet",
    "run_frontier",
    "run_system",
    "service_report_to_dict",
    "spot_zone_costs",
    "standard_policies",
    "supports_fluid",
    "grid_sweep",
]
