"""Reproduction of *SkyServe: Serving AI Models across Regions and Clouds
with Spot Instances* (EuroSys '25).

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel: engine, RNG streams, metrics.
``repro.cloud``
    Simulated multi-cloud substrate: topology, pricing catalog, spot
    obtainability traces, instance lifecycle, billing.
``repro.workloads``
    Request workload generators: Poisson, Arena-like, MAF-like.
``repro.serving``
    The SkyServe serving system: service controller, replicas, load
    balancer, autoscaler, simulated inference engine, client.
``repro.core``
    The paper's contribution — SpotHedge: Dynamic Placement (Alg. 1),
    Dynamic Fallback, overprovisioning, and the Omniscient ILP bound.
``repro.baselines``
    Reimplemented comparison systems: AWS ASG, AWSSpot, MArk, SpotServe.
``repro.analysis``
    Trace analysis: preemption correlation, availability vs search space.
``repro.experiments``
    Experiment harnesses replicating §5.1 (end-to-end serving) and §5.2
    (policy replay on spot traces).
"""

__version__ = "1.0.0"
