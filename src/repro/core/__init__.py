"""SpotHedge — the paper's core contribution (§3).

Dynamic Placement (Alg. 1), overprovisioning and Dynamic Fallback
(§3.2), the Omniscient ILP bound (§3.3), and the heterogeneous-
accelerator extension (§6).
"""

from repro.core.fleet import FleetMixturePolicy, hetero_spothedge
from repro.core.heterogeneous import AcceleratorTier, HeterogeneousPolicy
from repro.core.omniscient import (
    OmniscientResult,
    solve_omniscient,
    solve_omniscient_greedy,
)
from repro.core.placement import (
    DynamicSpotPlacer,
    EvenSpreadPlacer,
    RoundRobinPlacer,
    SpotPlacer,
    make_placer,
)
from repro.core.spothedge import (
    MixturePolicy,
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)

__all__ = [
    "AcceleratorTier",
    "DynamicSpotPlacer",
    "HeterogeneousPolicy",
    "EvenSpreadPlacer",
    "FleetMixturePolicy",
    "MixturePolicy",
    "OmniscientResult",
    "OnDemandOnlyPolicy",
    "RoundRobinPlacer",
    "SpotPlacer",
    "even_spread_policy",
    "hetero_spothedge",
    "make_placer",
    "round_robin_policy",
    "solve_omniscient",
    "solve_omniscient_greedy",
    "spothedge",
]
