"""SpotHedge: the paper's policy (§3), as a :class:`ServingPolicy`.

The general form is :class:`MixturePolicy`, parameterised by

* a spot placer (Dynamic / Even Spread / Round Robin),
* the number of overprovisioned spot replicas ``N_Extra`` (§3.2),
* whether Dynamic Fallback is on, and
* a base on-demand count.

The named configurations match the paper's comparisons:

* :func:`spothedge` — Dynamic Placement + overprovisioning + Dynamic
  Fallback (the full SpotHedge policy);
* :func:`even_spread_policy` / :func:`round_robin_policy` — pure-spot
  placement baselines of §5.2 (no overprovision, no fallback).

The Dynamic Fallback target (§3.2)::

    O(t) = min(N_Tar, N_Tar + N_Extra − S_r(t))

launches an on-demand replica per missing ready spot replica, capped at
N_Tar, and scales them down once spot capacity returns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, AbstractSet, Mapping, Optional, Sequence

from repro.core.placement import (
    DynamicSpotPlacer,
    EvenSpreadPlacer,
    RoundRobinPlacer,
    SpotPlacer,
)
from repro.serving.policy import MixTarget, Observation, ServingPolicy

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.telemetry.audit import PolicyAuditLog

__all__ = [
    "MixturePolicy",
    "OnDemandOnlyPolicy",
    "even_spread_policy",
    "round_robin_policy",
    "spothedge",
]


class OnDemandOnlyPolicy(ServingPolicy):
    """The traditional deployment every cost figure normalises against:
    N_Tar on-demand replicas, no spot at all."""

    name = "OnDemand"
    # Pure function of obs.n_tar — safe to fast-forward.
    stationary_decisions = True

    def __init__(self, od_zones: Sequence[str]) -> None:
        if not od_zones:
            raise ValueError("no on-demand zones")
        self.od_zones = list(od_zones)

    def target_mix(self, obs: Observation) -> MixTarget:
        return MixTarget(spot_target=0, od_target=obs.n_tar)

    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        return None

    def select_od_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        for zone in self.od_zones:
            if zone not in excluded:
                return zone
        return None


class MixturePolicy(ServingPolicy):
    """Spot/on-demand mixture driven by a placer and fallback rule."""

    # target_mix depends only on fleet counts (never obs.now); placer
    # mutations (set_target, mix interning) are idempotent under
    # repeated identical observations.  The audit log is the one
    # time-keyed side effect, so the fastpath additionally requires
    # ``audit is None`` before skipping steps.
    stationary_decisions = True

    # The MixTarget interning table: re-running target_mix on an
    # identical observation rewrites the same key with an equal value.
    stationary_state = frozenset({"_mix_cache"})

    def __init__(
        self,
        placer: SpotPlacer,
        *,
        num_overprovision: int = 0,
        dynamic_ondemand_fallback: bool = False,
        base_ondemand_replicas: int = 0,
        od_zones: Optional[Sequence[str]] = None,
        od_zone_costs: Optional[Mapping[str, float]] = None,
        name: Optional[str] = None,
    ) -> None:
        if num_overprovision < 0 or base_ondemand_replicas < 0:
            raise ValueError("negative replica counts")
        self.placer = placer
        self.num_overprovision = num_overprovision
        self.dynamic_ondemand_fallback = dynamic_ondemand_fallback
        self.base_ondemand_replicas = base_ondemand_replicas
        self.od_zones = list(od_zones) if od_zones is not None else list(placer.zones)
        if not self.od_zones:
            raise ValueError("no on-demand zones")
        self._od_zone_costs = dict(od_zone_costs or {z: 1.0 for z in self.od_zones})
        self.name = name or f"mixture({placer.name})"
        self._last_mix: Optional[MixTarget] = None
        #: (spot_target, od_target) → MixTarget.  MixTarget is frozen,
        #: so interning repeats avoids reconstructing one per tick on
        #: the replay/reconcile hot path; a handful of distinct targets
        #: ever exist, so the cache stays tiny.
        self._mix_cache: dict[tuple[int, int], MixTarget] = {}

    def attach_audit(self, audit: PolicyAuditLog) -> None:
        """Record mixture decisions here and placement decisions in the
        placer against the same log."""
        super().attach_audit(audit)
        self.placer.audit = audit

    # ------------------------------------------------------------------
    # Mixture (§3.2)
    # ------------------------------------------------------------------
    def target_mix(self, obs: Observation) -> MixTarget:
        spot_target = obs.n_tar + self.num_overprovision
        self.placer.set_target(spot_target)
        od_target = self.base_ondemand_replicas
        fallback = 0
        if self.dynamic_ondemand_fallback:
            fallback = min(obs.n_tar, spot_target - obs.spot_ready)
            od_target = max(od_target, max(fallback, 0))
        mix = self._mix_cache.get((spot_target, od_target))
        if mix is None:
            mix = MixTarget(spot_target=spot_target, od_target=od_target)
            self._mix_cache[(spot_target, od_target)] = mix
        if self.audit is not None:
            self.audit.touch(obs.now)
            if mix != self._last_mix:
                self.audit.record(
                    "target_mix",
                    spot_target=spot_target,
                    od_target=od_target,
                    n_tar=obs.n_tar,
                    n_extra=self.num_overprovision,
                    spot_ready=obs.spot_ready,
                    fallback=fallback,
                )
                self._last_mix = mix
        return mix

    # ------------------------------------------------------------------
    # Placement (§3.1)
    # ------------------------------------------------------------------
    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        zone = self.placer.select_zone(obs.spot_by_zone, excluded)
        if self.audit is not None and zone is not None:
            self.audit.touch(obs.now)
            self.audit.record(
                "select_zone",
                zone=zone,
                placements=dict(obs.spot_by_zone),
                excluded=sorted(excluded),
            )
        return zone

    def select_od_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        """On-demand replicas go to the cheapest enabled zone; on-demand
        capacity is generally obtainable everywhere (§5.1 discussion)."""
        candidates = [z for z in self.od_zones if z not in excluded]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda z: (self._od_zone_costs.get(z, 1.0), self.od_zones.index(z)),
        )

    # ------------------------------------------------------------------
    # Feedback to the placer
    # ------------------------------------------------------------------
    def on_spot_ready(self, zone_id: str) -> None:
        self.placer.handle_active(zone_id)

    def on_spot_preempted(self, zone_id: str) -> None:
        self.placer.handle_preemption(zone_id)

    def on_spot_launch_failed(self, zone_id: str) -> None:
        self.placer.handle_launch_failure(zone_id)


def spothedge(
    zones: Sequence[str],
    *,
    zone_costs: Optional[Mapping[str, float]] = None,
    num_overprovision: int = 2,
    base_ondemand_replicas: int = 0,
    od_zones: Optional[Sequence[str]] = None,
) -> MixturePolicy:
    """The full SpotHedge policy (Dynamic Placement + N_Extra + Dynamic
    Fallback), with the paper's default of two overprovisioned replicas."""
    return MixturePolicy(
        DynamicSpotPlacer(zones, zone_costs),
        num_overprovision=num_overprovision,
        dynamic_ondemand_fallback=True,
        base_ondemand_replicas=base_ondemand_replicas,
        od_zones=od_zones,
        name="SpotHedge",
    )


def even_spread_policy(
    zones: Sequence[str],
    *,
    zone_costs: Optional[Mapping[str, float]] = None,
) -> MixturePolicy:
    """§5.2's Even Spread comparison: pure spot, static even spread."""
    return MixturePolicy(
        EvenSpreadPlacer(zones, zone_costs),
        num_overprovision=0,
        dynamic_ondemand_fallback=False,
        name="EvenSpread",
    )


def round_robin_policy(
    zones: Sequence[str],
    *,
    zone_costs: Optional[Mapping[str, float]] = None,
) -> MixturePolicy:
    """§5.2's Round Robin comparison: pure spot, cycling zones."""
    return MixturePolicy(
        RoundRobinPlacer(zones, zone_costs),
        num_overprovision=0,
        dynamic_ondemand_fallback=False,
        name="RoundRobin",
    )
