"""Heterogeneous-accelerator extension (§6, "Support heterogeneous
accelerators").

The paper sketches this as future work: when the spot market for the
preferred (high-end) GPU is unobtainable, fall back to a cheaper,
lower-end GPU instead of waiting or paying for on-demand.  This module
implements that policy as a wrapper that runs one placer per accelerator
*tier* and walks down the tier list as launches fail.

A tier is usable again after ``tier_retry_interval`` seconds without
failures — so the policy drifts back to the best GPU when its market
recovers, mirroring how Dynamic Placement rehabilitates zones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping, Optional, Sequence

from repro.core.placement import DynamicSpotPlacer
from repro.serving.policy import MixTarget, Observation, ServingPolicy

__all__ = ["AcceleratorTier", "HeterogeneousPolicy"]


@dataclass(frozen=True)
class AcceleratorTier:
    """One accelerator option: its zones and relative performance.

    ``performance`` scales how much serving capacity a replica on this
    tier provides (1.0 = the preferred GPU); lower tiers may need more
    replicas for the same load.
    """

    accelerator: str
    zones: tuple[str, ...]
    performance: float = 1.0
    zone_costs: Optional[Mapping[str, float]] = None
    #: Per-zone on-demand $/h, for Dynamic Fallback's MIN-COST pick.
    #: Falls back to ``zone_costs`` (spot prices track on-demand prices
    #: within a tier) and then to declaration order when neither is set.
    od_zone_costs: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if not self.zones:
            raise ValueError(f"tier {self.accelerator}: no zones")
        if self.performance <= 0:
            raise ValueError(f"tier {self.accelerator}: non-positive performance")


class HeterogeneousPolicy(ServingPolicy):
    """SpotHedge across an ordered list of accelerator tiers.

    Placement walks the tiers best-first; a tier whose zones all
    recently failed is skipped until ``tier_retry_interval`` elapses.
    The Dynamic Fallback rule (§3.2) is unchanged — on-demand still
    backstops everything.
    """

    name = "SpotHedge-hetero"

    def __init__(
        self,
        tiers: Sequence[AcceleratorTier],
        *,
        num_overprovision: int = 2,
        dynamic_ondemand_fallback: bool = True,
        tier_retry_interval: float = 600.0,
    ) -> None:
        if not tiers:
            raise ValueError("need at least one accelerator tier")
        if tier_retry_interval <= 0:
            raise ValueError("tier_retry_interval must be positive")
        self.tiers = list(tiers)
        self.num_overprovision = num_overprovision
        self.dynamic_ondemand_fallback = dynamic_ondemand_fallback
        self.tier_retry_interval = tier_retry_interval
        self._placers = [
            DynamicSpotPlacer(tier.zones, tier.zone_costs) for tier in tiers
        ]
        self._zone_tier = {
            zone: i for i, tier in enumerate(tiers) for zone in tier.zones
        }
        if len(self._zone_tier) != sum(len(t.zones) for t in tiers):
            raise ValueError("tiers must not share zones")
        # Per-zone timestamp of the last launch failure; a tier is
        # "down" while *all* of its zones failed within the retry
        # interval.
        self._zone_failed_at: dict[str, float] = {}
        self._now = 0.0

    def accelerator_of(self, zone_id: str) -> str:
        """Which tier's accelerator a zone belongs to."""
        return self.tiers[self._zone_tier[zone_id]].accelerator

    def target_mix(self, obs: Observation) -> MixTarget:
        self._now = obs.now
        spot_target = obs.n_tar + self.num_overprovision
        od_target = 0
        if self.dynamic_ondemand_fallback:
            od_target = max(min(obs.n_tar, spot_target - obs.spot_ready), 0)
        return MixTarget(spot_target=spot_target, od_target=od_target)

    def _tier_usable(self, index: int) -> bool:
        for zone in self.tiers[index].zones:
            failed_at = self._zone_failed_at.get(zone)
            if failed_at is None or self._now - failed_at >= self.tier_retry_interval:
                return True
        return False

    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        self._now = obs.now
        for index, placer in enumerate(self._placers):
            if not self._tier_usable(index):
                continue
            zone = placer.select_zone(obs.spot_by_zone, excluded)
            if zone is not None:
                return zone
        # Every preferred tier is cooling down: try them anyway, best
        # first, rather than launching nothing.
        for placer in self._placers:
            zone = placer.select_zone(obs.spot_by_zone, excluded)
            if zone is not None:
                return zone
        return None

    def _tier_od_zone(
        self, tier: AcceleratorTier, excluded: AbstractSet[str]
    ) -> Optional[str]:
        candidates = [z for z in tier.zones if z not in excluded]
        if not candidates:
            return None
        costs = tier.od_zone_costs if tier.od_zone_costs is not None else tier.zone_costs
        if costs is None:
            return candidates[0]
        return min(
            candidates,
            key=lambda z: (costs.get(z, float("inf")), tier.zones.index(z)),
        )

    def select_od_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        """On-demand fallback lands on the best *usable* tier, in the
        tier's cheapest on-demand zone — mirroring select_spot_zone's
        tier walk instead of blindly taking declaration order."""
        self._now = obs.now
        for index, tier in enumerate(self.tiers):
            if not self._tier_usable(index):
                continue
            zone = self._tier_od_zone(tier, excluded)
            if zone is not None:
                return zone
        # Every tier is cooling down: on-demand capacity is generally
        # obtainable even where spot is not (§5.1), so fall back to the
        # plain best-first walk rather than launching nothing.
        for tier in self.tiers:
            zone = self._tier_od_zone(tier, excluded)
            if zone is not None:
                return zone
        return None

    def on_spot_ready(self, zone_id: str) -> None:
        index = self._zone_tier[zone_id]
        self._placers[index].handle_active(zone_id)
        self._zone_failed_at.pop(zone_id, None)

    def on_spot_preempted(self, zone_id: str) -> None:
        index = self._zone_tier[zone_id]
        self._placers[index].handle_preemption(zone_id)

    def on_spot_launch_failed(self, zone_id: str) -> None:
        index = self._zone_tier[zone_id]
        self._placers[index].handle_launch_failure(zone_id)
        self._zone_failed_at[zone_id] = self._now
