"""Omniscient policy (§3.3): the offline ILP lower bound.

Given the *complete* spot obtainability trace (infeasible online — the
paper proposes it purely as a bound), choose launched spot replicas per
zone ``S(z,t)`` and on-demand replicas ``O(t)`` minimising normalised
cost (Eq. 1) subject to:

* an availability floor: at least ``Avail_Tar`` of the steps must have
  ``S_r(t) + O_r(t) ≥ N_Tar(t)`` (Eq. 2),
* per-zone spot capacity ``S(z,t) ≤ C(z,t)`` (Eq. 3),
* cold-start coupling: a replica is only *ready* at ``t`` if it has been
  continuously launched over the previous ``d`` seconds (Eq. 4),
* the big-M linearisation of the availability indicator ``M(t)``
  (Eq. 5).

Costs are in spot-replica units: a spot replica-step costs 1, an
on-demand replica-step costs ``k`` (the on-demand/spot price ratio).

Solved exactly with ``scipy.optimize.milp``.  Trace steps can be
coarsened with ``resample_step`` to keep the ILP tractable on the
2-month traces (the paper's ILP has the same per-step granularity
freedom).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from numpy.typing import NDArray
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.cloud.traces import SpotTrace

__all__ = ["OmniscientResult", "solve_omniscient", "solve_omniscient_greedy"]


@dataclass(frozen=True)
class OmniscientResult:
    """Solution of the Omniscient ILP."""

    step: float
    zone_ids: list[str]
    spot_launched: NDArray[np.int64]  # (zones, T)
    od_launched: NDArray[np.int64]  # (T,)
    spot_ready: NDArray[np.int64]  # (T,)
    od_ready: NDArray[np.int64]  # (T,)
    satisfied: NDArray[np.bool_]  # (T,) bool: S_r + O_r >= N_Tar
    cost: float  # in spot replica-steps (the Eq. 1 objective)
    k: float

    @property
    def availability(self) -> float:
        return float(self.satisfied.mean())

    @property
    def ready_total(self) -> NDArray[np.int64]:
        return self.spot_ready + self.od_ready

    def cost_relative_to_on_demand(self, n_tar: Sequence[int] | int) -> float:
        """Objective normalised by always running N_Tar on-demand."""
        T = self.od_launched.shape[0]
        if isinstance(n_tar, (int, np.integer)):
            n_tar_arr = np.full(T, int(n_tar), dtype=np.int64)
        else:
            n_tar_arr = np.asarray(n_tar, dtype=np.int64)
        baseline = self.k * float(n_tar_arr.sum())
        if baseline <= 0:
            raise ValueError("non-positive on-demand baseline")
        return self.cost / baseline


def _resample(trace: SpotTrace, step: float) -> tuple[NDArray[np.int64], int]:
    """Min-pool trace capacity onto a coarser grid (conservative: a step
    only has capacity if capacity held throughout it)."""
    if step < trace.step:
        raise ValueError(f"cannot resample {trace.step}s trace to finer {step}s")
    factor = int(round(step / trace.step))
    n_steps = trace.n_steps // factor
    if n_steps == 0:
        raise ValueError("trace shorter than one resampled step")
    clipped = trace.capacity[:, : n_steps * factor]
    pooled = clipped.reshape(clipped.shape[0], n_steps, factor).min(axis=2)
    return pooled, n_steps


def solve_omniscient_greedy(
    trace: SpotTrace,
    n_tar: int,
    *,
    k: float = 3.0,
    cold_start: float = 180.0,
    resample_step: Optional[float] = None,
) -> OmniscientResult:
    """A scalable clairvoyant heuristic for long traces.

    The exact ILP grows with T x Z and becomes impractical on the
    two-month traces; this greedy keeps the clairvoyance but allocates
    forward in time in O(T.Z log Z):

    * spot replicas are held in zones for as long as the (known) future
      capacity lasts; new allocations pick the zones with the longest
      remaining capacity runway (fewest future relaunches);
    * a replica is ready once it has been continuously allocated for
      one cold start;
    * on-demand replicas are scheduled with perfect foresight to cover
      every future shortfall exactly (launched one cold start early).

    Its cost is an upper bound on the true optimum and a lower bound on
    any online policy run under the same rules; availability is 1.0
    except for the unavoidable initial cold start.
    """
    if k <= 0:
        raise ValueError(f"non-positive cost ratio k={k}")
    if n_tar < 1:
        raise ValueError("n_tar must be >= 1")
    step = resample_step if resample_step is not None else trace.step
    capacity, T = _resample(trace, step)
    Z = len(trace.zone_ids)
    d_steps = max(int(math.ceil(cold_start / step)), 0)

    # runway[z, t]: how many consecutive steps from t zone z keeps
    # capacity >= 1 more than a hypothetical extra allocation would
    # need.  We compute it per (zone, t) against current usage lazily.
    spot_launched = np.zeros((Z, T), dtype=np.int64)
    spot_ready = np.zeros(T, dtype=np.int64)
    # Each allocation: [zone, age_steps]; age counts continuous steps.
    allocations: list[list[int]] = []

    def runway(zone: int, t: int, used: NDArray[np.int64]) -> int:
        length = 0
        while t + length < T and capacity[zone, t + length] > used[zone]:
            length += 1
        return length

    for t in range(T):
        # 1. Evict allocations beyond the step's capacity (clairvoyant
        # termination and reclaim cost the same, so simple eviction).
        used = np.zeros(Z, dtype=np.int64)
        surviving: list[list[int]] = []
        for alloc in allocations:
            zone = alloc[0]
            if used[zone] < capacity[zone, t]:
                used[zone] += 1
                alloc[1] += 1
                surviving.append(alloc)
        allocations = surviving

        # 2. Top up to n_tar, longest-runway zones first.
        while len(allocations) < n_tar:
            candidates = [
                (runway(z, t, used), z) for z in range(Z) if used[z] < capacity[z, t]
            ]
            candidates = [(r, z) for r, z in candidates if r > 0]
            if not candidates:
                break
            _, zone = max(candidates)
            used[zone] += 1
            allocations.append([zone, 1])

        for alloc in allocations:
            spot_launched[alloc[0], t] += 1
        spot_ready[t] = sum(1 for alloc in allocations if alloc[1] > d_steps)

    # 3. Clairvoyant on-demand: cover every shortfall, warmed up early.
    od_ready = np.maximum(n_tar - spot_ready, 0)
    if d_steps > 0:
        od_ready[:d_steps] = 0  # nothing can be ready before one cold start
    od_launched = np.zeros(T, dtype=np.int64)
    for t in range(T):
        window_end = min(t + d_steps + 1, T)
        od_launched[t] = od_ready[t : window_end].max() if t < T else 0

    satisfied = (spot_ready + od_ready) >= n_tar
    return OmniscientResult(
        step=step,
        zone_ids=list(trace.zone_ids),
        spot_launched=spot_launched,
        od_launched=od_launched,
        spot_ready=spot_ready,
        od_ready=od_ready,
        satisfied=satisfied,
        cost=float(spot_launched.sum() + k * od_launched.sum()),
        k=k,
    )


def solve_omniscient(
    trace: SpotTrace,
    n_tar: Sequence[int] | int,
    *,
    k: float = 3.0,
    cold_start: float = 180.0,
    avail_target: float = 0.99,
    resample_step: Optional[float] = None,
    n_extra_cap: Optional[int] = None,
    time_limit: float = 120.0,
) -> OmniscientResult:
    """Solve the Omniscient ILP over ``trace``.

    ``n_tar`` may be a scalar or a per-step sequence (after resampling).
    ``k`` is the on-demand/spot price ratio (> 1).  ``n_extra_cap``
    bounds ready replicas (defaults to ``max(N_Tar) + 2``).
    """
    if k <= 0:
        raise ValueError(f"non-positive cost ratio k={k}")
    if not 0.0 <= avail_target <= 1.0:
        raise ValueError(f"avail_target {avail_target} outside [0, 1]")
    step = resample_step if resample_step is not None else trace.step
    capacity, T = _resample(trace, step)
    Z = len(trace.zone_ids)
    if isinstance(n_tar, (int, np.integer)):
        n_tar_arr = np.full(T, int(n_tar), dtype=np.int64)
    else:
        n_tar_arr = np.asarray(n_tar, dtype=np.int64)[:T]
    if n_tar_arr.shape[0] != T:
        raise ValueError(f"n_tar has {n_tar_arr.shape[0]} steps, trace has {T}")
    n_max = int(n_tar_arr.max()) + (2 if n_extra_cap is None else int(n_extra_cap))
    d_steps = max(int(math.ceil(cold_start / step)), 0)

    # Variable layout: [S(z,t) ... | O(t) | Sr(t) | Or(t) | M(t)]
    n_s = Z * T

    def s_idx(z: int, t: int) -> int:
        return t * Z + z

    def o_idx(t: int) -> int:
        return n_s + t

    def sr_idx(t: int) -> int:
        return n_s + T + t

    def or_idx(t: int) -> int:
        return n_s + 2 * T + t

    def m_idx(t: int) -> int:
        return n_s + 3 * T + t

    n_vars = n_s + 4 * T

    objective = np.zeros(n_vars)
    objective[:n_s] = 1.0
    objective[n_s : n_s + T] = k

    lower = np.zeros(n_vars)
    upper = np.empty(n_vars)
    for t in range(T):
        for z in range(Z):
            upper[s_idx(z, t)] = capacity[z, t]
        upper[o_idx(t)] = n_max
        upper[sr_idx(t)] = n_max
        upper[or_idx(t)] = n_max
        upper[m_idx(t)] = 1
        if t < d_steps:
            upper[sr_idx(t)] = 0  # nothing can be ready before one cold start
            upper[or_idx(t)] = 0

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lbs: list[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # Eq. 4: readiness requires continuous launch over the cold start.
    window = max(d_steps, 1)
    for t in range(T):
        if t < d_steps:
            continue
        for back in range(window):
            tp = t - back
            if tp < 0:
                break
            # sum_z S(z, tp) - Sr(t) >= 0
            for z in range(Z):
                add_entry(row, s_idx(z, tp), 1.0)
            add_entry(row, sr_idx(t), -1.0)
            lbs.append(0.0)
            row += 1
            # O(tp) - Or(t) >= 0
            add_entry(row, o_idx(tp), 1.0)
            add_entry(row, or_idx(t), -1.0)
            lbs.append(0.0)
            row += 1

    # Eq. 5: M(t) = 1  =>  Sr + Or >= N_Tar;  M(t) = 0 => Sr + Or <= N_Tar.
    for t in range(T):
        # n_max * M - Sr - Or >= -N_Tar   (upper side)
        add_entry(row, m_idx(t), float(n_max))
        add_entry(row, sr_idx(t), -1.0)
        add_entry(row, or_idx(t), -1.0)
        lbs.append(-float(n_tar_arr[t]))
        row += 1
        # Sr + Or - n_max * M >= N_Tar - n_max   (lower side)
        add_entry(row, sr_idx(t), 1.0)
        add_entry(row, or_idx(t), 1.0)
        add_entry(row, m_idx(t), -float(n_max))
        lbs.append(float(n_tar_arr[t]) - float(n_max))
        row += 1

    # Eq. 2: availability floor.
    for t in range(T):
        add_entry(row, m_idx(t), 1.0)
    lbs.append(math.ceil(avail_target * T))
    row += 1

    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(row, n_vars))
    constraints = LinearConstraint(matrix, lb=np.asarray(lbs), ub=np.inf)
    result = milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=Bounds(lower, upper),
        options={"time_limit": time_limit},
    )
    if result.x is None:
        raise RuntimeError(
            f"Omniscient ILP infeasible or timed out: {result.message}"
        )
    x = np.round(result.x).astype(np.int64)
    spot_launched = np.zeros((Z, T), dtype=np.int64)
    for t in range(T):
        for z in range(Z):
            spot_launched[z, t] = x[s_idx(z, t)]
    od = np.array([x[o_idx(t)] for t in range(T)], dtype=np.int64)
    spot_ready = np.array([x[sr_idx(t)] for t in range(T)], dtype=np.int64)
    od_ready = np.array([x[or_idx(t)] for t in range(T)], dtype=np.int64)
    satisfied = (spot_ready + od_ready) >= n_tar_arr
    return OmniscientResult(
        step=step,
        zone_ids=list(trace.zone_ids),
        spot_launched=spot_launched,
        od_launched=od,
        spot_ready=spot_ready,
        od_ready=od_ready,
        satisfied=satisfied,
        cost=float(spot_launched.sum() + k * od.sum()),
        k=k,
    )
