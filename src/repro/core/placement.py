"""Spot placement policies (§3.1).

Three placers, matching the paper's comparison:

* :class:`DynamicSpotPlacer` — Algorithm 1.  Tracks an available-zone
  list ``Z_A`` and a highly-preempting list ``Z_P``; preemptions (and,
  like the SkyPilot implementation, launch failures) move a zone to
  ``Z_P``; a successful launch moves it back to ``Z_A``.  New replicas
  go to the zone in ``Z_A`` with no current placement and the lowest
  cost (``SELECT-NEXT-ZONE``), falling back to all of ``Z_A`` when every
  available zone is already used.  When ``|Z_A| < 2`` the placer
  *rebalances* — returns every zone in ``Z_P`` to ``Z_A`` — to avoid
  concentrating all replicas in one zone.
* :class:`EvenSpreadPlacer` — the AWS-ASG/MArk static policy: keep an
  even static spread regardless of preemption history.
* :class:`RoundRobinPlacer` — the Ray Serve/GKE policy: cycle through
  zones; remembers nothing about preempting zones.

The §3.1 analysis: with per-zone Poisson preemption rates λ_i, Even
Spread sees ``n·T·mean(λ_i)`` preemptions, Round Robin the (smaller)
harmonic-mean rate, and tracking λ_i (Dynamic) avoids hot zones almost
entirely — property tests in ``tests/core/test_placement.py`` check this
ordering on simulated zone processes.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, AbstractSet, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.telemetry.audit import PolicyAuditLog

__all__ = [
    "DynamicSpotPlacer",
    "EvenSpreadPlacer",
    "RoundRobinPlacer",
    "SpotPlacer",
    "make_placer",
]


class SpotPlacer(abc.ABC):
    """Chooses the zone for each new spot replica."""

    name: str = "placer"

    #: Optional decision audit log, propagated down from the owning
    #: policy's ``attach_audit``.  Placers record zone-list transitions
    #: only when one is attached.
    audit: Optional[PolicyAuditLog] = None

    def __init__(
        self, zones: Sequence[str], zone_costs: Optional[Mapping[str, float]] = None
    ) -> None:
        if not zones:
            raise ValueError("placer needs at least one zone")
        if len(set(zones)) != len(zones):
            raise ValueError("duplicate zones")
        self.zones = list(zones)
        self.zone_costs = dict(zone_costs or {z: 1.0 for z in zones})
        for zone in self.zones:
            if zone not in self.zone_costs:
                raise ValueError(f"no cost for zone {zone!r}")

    @abc.abstractmethod
    def select_zone(
        self,
        current_placements: Mapping[str, int],
        excluded: AbstractSet[str] = frozenset(),
    ) -> Optional[str]:
        """Zone for the next launch given alive replicas per zone.

        ``excluded`` holds zones whose launch already failed in the
        current reconciliation round (the capacity error came back
        within seconds); a sane caller does not retry them until the
        next round.  Returns ``None`` when every candidate is excluded.
        """

    def set_target(self, n: int) -> None:
        """Tell the placer the current fleet-size target.

        Only static-quota placers (Even Spread) need it; the default is
        a no-op.
        """

    def handle_preemption(self, zone: str) -> None:
        """A replica was preempted in ``zone``."""

    def handle_launch_failure(self, zone: str) -> None:
        """A launch attempt found no capacity in ``zone``."""

    def handle_active(self, zone: str) -> None:
        """A replica launched successfully and is ready in ``zone``."""


class DynamicSpotPlacer(SpotPlacer):
    """Algorithm 1: preemption-aware dynamic placement."""

    name = "dynamic"

    def __init__(
        self,
        zones: Sequence[str],
        zone_costs: Optional[Mapping[str, float]] = None,
        *,
        treat_launch_failure_as_preemption: bool = True,
    ) -> None:
        super().__init__(zones, zone_costs)
        self.active_zones: list[str] = list(self.zones)  # Z_A
        self.preempting_zones: list[str] = []  # Z_P
        self._failure_is_preemption = treat_launch_failure_as_preemption

    # -- Alg. 1 state maintenance --------------------------------------
    def _move_to_preempting(self, zone: str) -> None:
        if zone in self.active_zones:
            self.active_zones.remove(zone)
            self.preempting_zones.append(zone)
            if self.audit is not None:
                self.audit.record(
                    "zone_to_preempting",
                    zone=zone,
                    active=list(self.active_zones),
                    preempting=list(self.preempting_zones),
                )
        if len(self.active_zones) < 2:
            # Zone rebalancing: never get cornered into a single zone.
            restored = list(self.preempting_zones)
            self.active_zones.extend(self.preempting_zones)
            self.preempting_zones.clear()
            if self.audit is not None and restored:
                self.audit.record(
                    "rebalance",
                    restored=restored,
                    active=list(self.active_zones),
                )

    # Called once per preemption event — alias away the trampoline
    # frame rather than delegating.
    handle_preemption = _move_to_preempting

    def handle_launch_failure(self, zone: str) -> None:
        if self._failure_is_preemption:
            self._move_to_preempting(zone)

    def handle_active(self, zone: str) -> None:
        if zone in self.preempting_zones:
            self.preempting_zones.remove(zone)
            self.active_zones.append(zone)
            if self.audit is not None:
                self.audit.record(
                    "zone_to_active",
                    zone=zone,
                    active=list(self.active_zones),
                    preempting=list(self.preempting_zones),
                )

    # -- SELECT-NEXT-ZONE ----------------------------------------------
    def _min_cost(self, zones: Sequence[str], placements: Mapping[str, int]) -> str:
        """Cheapest zone, breaking ties by fewer current placements and
        then by Z_A order — zones returned by a rebalance sit at the end
        of Z_A, so recently-preempting zones are tried last."""

        def rank(zone: str) -> int:
            if zone in self.active_zones:
                return self.active_zones.index(zone)
            return len(self.active_zones) + self.zones.index(zone)

        return min(
            zones,
            key=lambda z: (
                self.zone_costs[z],
                placements.get(z, 0),
                rank(z),
            ),
        )

    def select_zone(
        self,
        current_placements: Mapping[str, int],
        excluded: AbstractSet[str] = frozenset(),
    ) -> Optional[str]:
        # Hot path of every replay/reconcile tick: one pass over Z_A,
        # tracking the best unused and best used candidate at once —
        # equivalent to (but much cheaper than) building the candidate
        # and unused lists and calling ``_min_cost`` on them.  Z_A order
        # breaks ties, so iterating in rank order needs no rank key:
        # replace a candidate only on a strictly better (cost, placed).
        get = current_placements.get
        costs = self.zone_costs
        if excluded:
            candidates = [z for z in self.active_zones if z not in excluded]
        else:
            candidates = self.active_zones
        best_unused = best_used = None
        bu_cost = bs_cost = bs_placed = 0.0
        for zone in candidates:
            placed = get(zone, 0)
            if placed == 0:
                cost = costs[zone]
                if best_unused is None or cost < bu_cost:
                    best_unused, bu_cost = zone, cost
            elif best_unused is None:
                cost = costs[zone]
                if (
                    best_used is None
                    or cost < bs_cost
                    # Exact equality is the *intended* tie-break: both
                    # operands are unmodified reads from the same
                    # zone_costs dict, so it is bit-exact deterministic.
                    or (cost == bs_cost and placed < bs_placed)  # repro: noqa[REPRO-F001]: same-dict reads, bit-exact tie-break
                ):
                    best_used, bs_cost, bs_placed = zone, cost, placed
        if best_unused is not None:
            return best_unused
        if candidates:
            return best_used
        # Everything in Z_A already failed this round; fall back to
        # any non-excluded enabled zone rather than giving up.
        candidates = [z for z in self.zones if z not in excluded]
        if not candidates:
            return None
        unused = [z for z in candidates if current_placements.get(z, 0) == 0]
        if unused:
            return self._min_cost(unused, current_placements)
        return self._min_cost(candidates, current_placements)


class EvenSpreadPlacer(SpotPlacer):
    """Static even spread (AWS ASG / MArk behaviour).

    The fleet target ``n`` is divided into fixed per-zone quotas
    (``zones[i % N]`` per slot, §3.1's "each zone is given n/N
    replicas").  New launches go only to zones below quota; when a
    quota zone has no capacity its slots simply stay unfilled — the
    placer never fails over to another zone, which is exactly why the
    paper's Even Spread "relaunches instances on highly-preempting
    zones and thus fails to get enough replicas".
    """

    name = "even_spread"

    # set_target writes the same quota for the same observation: safe
    # to reach from a stationary policy's target_mix.
    stationary_state = frozenset({"_target"})

    def __init__(
        self, zones: Sequence[str], zone_costs: Optional[Mapping[str, float]] = None
    ) -> None:
        super().__init__(zones, zone_costs)
        self._target = len(self.zones)

    def set_target(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"negative target {n}")
        self._target = n

    def quotas(self) -> dict[str, int]:
        """Fixed per-zone replica quotas for the current target."""
        counts = {z: 0 for z in self.zones}
        for slot in range(self._target):
            counts[self.zones[slot % len(self.zones)]] += 1
        return counts

    def select_zone(
        self,
        current_placements: Mapping[str, int],
        excluded: AbstractSet[str] = frozenset(),
    ) -> Optional[str]:
        quotas = self.quotas()
        candidates = [
            z
            for z in self.zones
            if z not in excluded and current_placements.get(z, 0) < quotas[z]
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda z: (
                current_placements.get(z, 0) - quotas[z],
                self.zones.index(z),
            ),
        )


class RoundRobinPlacer(SpotPlacer):
    """Cycle through zones in order (Ray Serve / GKE behaviour)."""

    name = "round_robin"

    def __init__(
        self, zones: Sequence[str], zone_costs: Optional[Mapping[str, float]] = None
    ) -> None:
        super().__init__(zones, zone_costs)
        self._next = 0

    def select_zone(
        self,
        current_placements: Mapping[str, int],
        excluded: AbstractSet[str] = frozenset(),
    ) -> Optional[str]:
        for _ in range(len(self.zones)):
            zone = self.zones[self._next % len(self.zones)]
            self._next += 1
            if zone not in excluded:
                return zone
        return None


def make_placer(
    kind: str,
    zones: Sequence[str],
    zone_costs: Optional[Mapping[str, float]] = None,
) -> SpotPlacer:
    """Instantiate a placer from a spec's ``spot_placer`` name.

    Resolution goes through :data:`repro.serving.registry.PLACERS`, so
    third-party placers registered there are constructible by name too.
    """
    from repro.serving.registry import PLACERS

    cls: type[SpotPlacer] = PLACERS.get(kind)
    return cls(zones, zone_costs)


# Registered at the bottom so the classes exist before the registry
# import (which initialises the whole repro.serving package) runs.
from repro.serving.registry import PLACERS as _PLACERS  # noqa: E402

_PLACERS.register("dynamic", DynamicSpotPlacer)
_PLACERS.register("even_spread", EvenSpreadPlacer)
_PLACERS.register("round_robin", RoundRobinPlacer)
