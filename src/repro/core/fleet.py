"""Capacity-weighted SpotHedge over heterogeneous (zone × type) pools.

:class:`FleetMixturePolicy` generalises :class:`MixturePolicy` from
counting replicas to accounting *serving capacity*: each spot pool
(``"zone@itype"``, see :mod:`repro.cloud.gpus`) carries a capacity
weight in reference-replica units, the target N_Tar + N_Extra becomes a
capacity goal in those units, and Dynamic Fallback covers the weighted
shortfall.  Placement itself is unchanged Alg. 1 — the placer's
MIN-COST signal is fed cost-per-effective-throughput, which is what
makes zone and instance type co-optimised rather than walked in fixed
tiers.

Exactness contract: when every pool weight is exactly 1.0 the policy
delegates to the parent's integer arithmetic, so a homogeneous
(single-type) fleet reproduces the unweighted SpotHedge decisions
bit-for-bit (the equivalence test pins this).
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from repro.core.placement import DynamicSpotPlacer, SpotPlacer
from repro.core.spothedge import MixturePolicy
from repro.serving.policy import MixTarget, Observation

__all__ = ["FleetMixturePolicy", "hetero_spothedge"]


class FleetMixturePolicy(MixturePolicy):
    """SpotHedge whose targets are capacity goals, not replica counts.

    ``pool_weights`` maps each of the placer's zones (pools) to its
    serving capacity in reference-replica units; missing pools default
    to 1.0.  ``target_mix`` plans spot launches greedily through the
    placer's own ``select_zone`` until the planned weighted capacity
    covers ``n_tar + num_overprovision`` reference units, and sizes
    Dynamic Fallback as::

        O(t) = min(N_Tar, ceil(N_Tar + N_Extra − W_r(t)))

    where ``W_r`` is a conservative lower bound on ready weighted
    capacity: the policy sees per-pool *alive* counts but not per-pool
    readiness (mirroring what real clients observe), so it assumes the
    cold replicas are the heaviest ones placed.  Scale-down is equally
    conservative: the replay layer picks its own victim (newest
    launch first), so the policy only releases replicas while *any*
    victim choice keeps the goal covered, and never while a launch is
    still in flight — releasing earlier would kill the cold
    replacement it just requested.
    """

    #: The weighted planning loop probes ``placer.select_zone`` per
    #: hypothetical launch; the placer protocol does not promise that
    #: probe is side-effect-free (RoundRobinPlacer advances a cursor),
    #: so this policy cannot claim the stationary-decisions contract
    #: for arbitrary placers.  Heterogeneous replay runs on the
    #: discrete engine anyway (the fastpath rejects capacity weights).
    stationary_decisions = False

    def __init__(
        self,
        placer: SpotPlacer,
        *,
        pool_weights: Mapping[str, float],
        num_overprovision: int = 0,
        dynamic_ondemand_fallback: bool = False,
        base_ondemand_replicas: int = 0,
        od_zones: Optional[Sequence[str]] = None,
        od_zone_costs: Optional[Mapping[str, float]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            placer,
            num_overprovision=num_overprovision,
            dynamic_ondemand_fallback=dynamic_ondemand_fallback,
            base_ondemand_replicas=base_ondemand_replicas,
            od_zones=od_zones,
            od_zone_costs=od_zone_costs,
            name=name or f"fleet({placer.name})",
        )
        self._pool_order: list[str] = list(placer.zones)
        self._weights: dict[str, float] = {
            pool: float(pool_weights.get(pool, 1.0)) for pool in self._pool_order
        }
        for pool, weight in self._weights.items():
            if weight <= 0:
                raise ValueError(f"pool {pool}: non-positive capacity weight")
        self._uniform = all(w == 1.0 for w in self._weights.values())
        self._min_weight = min(self._weights.values())

    def pool_weight(self, pool: str) -> float:
        return self._weights.get(pool, 1.0)

    def _heaviest_placed(self, placements: Mapping[str, int]) -> tuple[Optional[str], float]:
        """Heaviest pool holding at least one replica (declaration
        order breaks weight ties), or ``(None, 0.0)``."""
        best: Optional[str] = None
        best_weight = 0.0
        for pool in self._pool_order:
            if placements.get(pool, 0) > 0:
                weight = self._weights[pool]
                if best is None or weight > best_weight:
                    best, best_weight = pool, weight
        return best, best_weight

    def weighted_capacity(self, placements: Mapping[str, int]) -> float:
        """Summed capacity of ``placements`` in reference units, always
        accumulated in pool declaration order (never dict order)."""
        total = 0.0
        for pool in self._pool_order:
            count = placements.get(pool, 0)
            if count:
                total += self._weights[pool] * count
        return total

    def target_mix(self, obs: Observation) -> MixTarget:
        if self._uniform:
            # All-reference fleet: exact integer arithmetic, identical
            # decisions (and audit records) to plain MixturePolicy.
            return super().target_mix(obs)
        goal = float(obs.n_tar + self.num_overprovision)
        placements = dict(obs.spot_by_zone)
        launched_capacity = self.weighted_capacity(placements)
        spot_target = obs.spot_launched
        planned = launched_capacity
        # Greedy launch plan through the placer's MIN-COST choice; the
        # cap bounds the plan when every pool weight is tiny.
        max_new = int(math.ceil(goal / self._min_weight)) + len(self._pool_order)
        while planned < goal and spot_target - obs.spot_launched < max_new:
            pool = self.placer.select_zone(placements, frozenset())
            if pool is None:
                break
            placements[pool] = placements.get(pool, 0) + 1
            planned += self._weights[pool]
            spot_target += 1
        if (
            spot_target == obs.spot_launched
            and obs.spot_ready == obs.spot_launched
        ):
            # Settled fleet with surplus: the replay layer picks its
            # own scale-down victim (newest launch first), so release
            # only while *any* victim leaves the goal covered —
            # repeatedly assume the heaviest placed replica dies.
            surplus = launched_capacity - goal
            while True:
                pool, weight = self._heaviest_placed(placements)
                if pool is None or surplus < weight:
                    break
                placements[pool] -= 1
                surplus -= weight
                spot_target -= 1
        self.placer.set_target(spot_target)
        od_target = self.base_ondemand_replicas
        fallback = 0.0
        if self.dynamic_ondemand_fallback:
            # Lower-bound the ready weighted capacity: per-pool
            # readiness is unobservable, so charge the cold replicas
            # at the heaviest placed weights.
            ready_capacity = launched_capacity
            pending = obs.spot_launched - obs.spot_ready
            if pending > 0:
                cold = sorted(
                    (
                        self._weights[pool]
                        for pool in self._pool_order
                        for _ in range(obs.spot_by_zone.get(pool, 0))
                    ),
                    reverse=True,
                )
                ready_capacity = max(
                    launched_capacity - sum(cold[:pending]), 0.0
                )
            fallback = min(float(obs.n_tar), goal - ready_capacity)
            od_target = max(od_target, int(math.ceil(max(fallback, 0.0))))
        mix = self._mix_cache.get((spot_target, od_target))
        if mix is None:
            mix = MixTarget(spot_target=spot_target, od_target=od_target)
            self._mix_cache[(spot_target, od_target)] = mix
        if self.audit is not None:
            self.audit.touch(obs.now)
            if mix != self._last_mix:
                self.audit.record(
                    "target_mix",
                    spot_target=spot_target,
                    od_target=od_target,
                    n_tar=obs.n_tar,
                    n_extra=self.num_overprovision,
                    spot_ready=obs.spot_ready,
                    fallback=int(math.ceil(max(fallback, 0.0))),
                )
                self._last_mix = mix
        return mix


def hetero_spothedge(
    pools: Sequence[str],
    *,
    pool_costs: Mapping[str, float],
    pool_weights: Mapping[str, float],
    num_overprovision: int = 2,
    od_zones: Optional[Sequence[str]] = None,
    od_zone_costs: Optional[Mapping[str, float]] = None,
    name: str = "SpotHedge-fleet",
) -> FleetMixturePolicy:
    """SpotHedge co-optimising zone × instance type.

    ``pools`` are ``"zone@itype"`` ids; ``pool_costs`` is the
    cost-per-effective-throughput signal
    (:func:`repro.cloud.gpus.pool_spot_costs`) the Dynamic placer's
    MIN-COST ranks by, and ``pool_weights`` the capacity weights
    (:func:`repro.cloud.gpus.pool_capacity_weights`).  On-demand
    fallback runs on plain zones (on-demand capacity is generally
    obtainable, §5.1) priced by the *fixed* cheapest-on-demand signal —
    the pricing path the satellite bugfix corrected.
    """
    placer = DynamicSpotPlacer(pools, dict(pool_costs))
    return FleetMixturePolicy(
        placer,
        pool_weights=pool_weights,
        num_overprovision=num_overprovision,
        dynamic_ondemand_fallback=True,
        od_zones=od_zones if od_zones is not None else list(pools),
        od_zone_costs=od_zone_costs,
        name=name,
    )
