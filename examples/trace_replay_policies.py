"""Replay spot obtainability traces against placement policies (§5.2).

Replays the four paper datasets (AWS 1-3, GCP 1 — regenerated
synthetically with the published statistics) at replica granularity and
compares SpotHedge with Even Spread, Round Robin, and the Omniscient
ILP bound on availability and cost — the Fig. 14a/b experiment.

Run:  python examples/trace_replay_policies.py
"""

from repro.cloud import DAY, aws1, aws2, aws3, gcp1
from repro.core import (
    even_spread_policy,
    round_robin_policy,
    solve_omniscient,
    spothedge,
)
from repro.experiments import ReplayConfig, TraceReplayer

N_TAR = 4
K = 4.0  # on-demand / spot price ratio (V100-class)


def main() -> None:
    policies = [
        ("SpotHedge", spothedge),
        ("RoundRobin", round_robin_policy),
        ("EvenSpread", even_spread_policy),
    ]

    print(f"{'trace':<8} {'policy':<11} {'availability':>13} "
          f"{'cost vs OD':>11} {'preemptions':>12}")
    print("-" * 60)
    for trace in (aws1(), aws2(), aws3(), gcp1()):
        for name, factory in policies:
            replayer = TraceReplayer(trace, ReplayConfig(n_tar=N_TAR, k=K))
            result = replayer.run(factory(trace.zone_ids))
            print(
                f"{trace.name:<8} {name:<11} {result.availability:>13.1%} "
                f"{result.relative_cost:>11.1%} {result.preemptions:>12}"
            )

    # The Omniscient bound (§3.3): an ILP over the full trace, solved on
    # a shorter window because it sees the entire future at once.
    print("\nOmniscient ILP bound (first 3 days of GCP 1):")
    trace = gcp1()
    window = trace.window(0, 3 * DAY)
    replayer = TraceReplayer(window, ReplayConfig(n_tar=N_TAR, k=K))
    online = replayer.run(spothedge(window.zone_ids))
    offline = solve_omniscient(
        window, N_TAR, k=K, avail_target=min(online.availability, 0.99),
        resample_step=600.0,
    )
    print(f"  SpotHedge  (online):  cost {online.relative_cost:.1%} of OD "
          f"at {online.availability:.1%} availability")
    print(f"  Omniscient (offline): cost "
          f"{offline.cost_relative_to_on_demand(N_TAR):.1%} of OD "
          f"at {offline.availability:.1%} availability")


if __name__ == "__main__":
    main()
