"""Compare SkyServe against production baselines, end-to-end (§5.1).

Deploys SkyServe (SpotHedge over three regions), AWS Auto-scaling Group,
a pure-spot AWS node pool, and MArk on the *same* simulated cloud trace
and the *same* bursty workload — the paper's concurrent-deployment
methodology — then prints the Fig. 9-style comparison table for both
scenarios (Spot Available and Spot Volatile).

Run:  python examples/llm_serving_comparison.py
"""

from repro.cloud import HOUR, default_catalog
from repro.experiments import run_comparison
from repro.workloads import arena_workload

DURATION = 3 * HOUR
N_TAR = 4


def main() -> None:
    workload = arena_workload(
        DURATION,
        base_rate=1.0,
        diurnal_amplitude=0.4,
        burst_multiplier=1.8,
        burst_mean_duration=180.0,
        max_output_tokens=800,
        seed=11,
    )
    print(f"workload: {len(workload)} requests over {DURATION / 3600:.0f}h "
          f"(mean {workload.mean_rate():.2f} req/s, "
          f"interarrival CV {workload.burstiness():.2f})")

    od_hourly = default_catalog().get("g5.48xlarge").on_demand_hourly
    od_baseline = od_hourly * N_TAR * DURATION / 3600.0

    for scenario in ("available", "volatile"):
        results = run_comparison(scenario, workload, DURATION, seed=6)
        print(f"\n=== Spot {scenario.capitalize()} "
              f"(Llama-2-70B on g5.48xlarge, 100s timeout) ===")
        header = (f"{'system':<10} {'fail':>7} {'P50':>7} {'P90':>7} "
                  f"{'P99':>7} {'cost vs OD':>11} {'avail':>7}")
        print(header)
        print("-" * len(header))
        for name, result in results.items():
            r = result.report
            print(
                f"{name:<10} {r.failure_rate:>7.2%} "
                f"{r.latency.p50:>6.1f}s {r.latency.p90:>6.1f}s "
                f"{r.latency.p99:>6.1f}s "
                f"{r.total_cost / od_baseline:>11.1%} "
                f"{r.availability:>7.1%}"
            )

    print("\nReading the table: under volatility the single-region systems")
    print("either keep one expensive on-demand node (ASG) or lose all")
    print("replicas to preemption (AWSSpot, MArk); SkyServe rides out the")
    print("drought on other regions plus its dynamic on-demand fallback.")


if __name__ == "__main__":
    main()
