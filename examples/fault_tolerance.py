"""Fault tolerance beyond preemptions: crashes, silent failures, and
preemption warnings.

The paper's controller manages "preemptions of spot replicas or any
arising errors" (§4).  This example throws all three failure classes at
one SpotHedge deployment:

* **spot reclaims** from a volatile capacity trace, with 120 s
  best-effort warnings (the controller launches replacements during the
  grace window);
* **instance crashes** (hardware faults, MTBF-injected) that hit spot
  and on-demand replicas alike and must not poison the placer's zone
  statistics;
* a **silent failure** — an endpoint that freezes and keeps accepting
  requests without answering — detectable only by the §4 readiness
  probe.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.cloud import HOUR, CloudConfig, SimCloud, SpotTrace, TraceZoneSpec, make_correlated_trace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceClient,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine
from repro.workloads import poisson_workload

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]
DURATION = 8 * HOUR


def main() -> None:
    specs = [
        TraceZoneSpec(z, mean_up=3 * HOUR, mean_down=1 * HOUR, capacity_up=4)
        for z in ZONES
    ]
    trace = make_correlated_trace(
        "faulty", specs, duration=DURATION,
        region_shock_rate=1 / (6 * HOUR), seed=13,
    )

    engine = SimulationEngine()
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(
            preempt_warning=120.0,       # best-effort termination notices
            instance_mtbf=6 * HOUR,      # occasional hardware faults
        ),
    )
    spec = ServiceSpec(
        name="fault-demo",
        replica_policy=ReplicaPolicyConfig(fixed_target=3, num_overprovision=1),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )
    profile = ModelProfile("demo", overhead=2.0, prefill_per_token=0.001,
                           decode_per_token=0.02, max_concurrency=8)
    controller = ServiceController(
        engine, cloud, spec, policy := spothedge(ZONES, num_overprovision=1),
        profile,
        probe_interval=30.0,   # §4 readiness probe
        probe_timeout=20.0,
    )
    workload = poisson_workload(DURATION, rate=0.8, seed=13)
    client = ServiceClient(controller, workload)
    controller.start()
    client.start()

    # Inject a silent failure at the two-hour mark: a replica freezes.
    def freeze_one() -> None:
        ready = controller.ready_replicas()
        if ready:
            print(f"[t={engine.now / 3600:.1f}h] injected silent failure "
                  f"on replica {ready[0].id} in {ready[0].zone_id}")
            ready[0].server.freeze()

    engine.call_at(2 * HOUR, freeze_one)
    engine.run_until(DURATION)

    stats = client.stats()
    print(f"\nserved {stats.completed}/{stats.total_requests} requests "
          f"({stats.failure_rate:.2%} failed) over {DURATION / 3600:.0f}h")
    print(f"latency p50 {stats.latency.p50:.1f}s p99 {stats.latency.p99:.1f}s")
    print(f"availability {controller.availability(600, DURATION, n_tar=3):.1%}")
    print("\nwhat the controller survived:")
    print(f"  spot preemptions:   {int(cloud.preemptions.value)} "
          f"(with {int(sum(1 for i in cloud.billing.instances if i.preempt_warned))} warned)")
    print(f"  instance crashes:   {int(cloud.crashes.value)}")
    print(f"  probe failures:     {int(controller.probe_failure_count.value)} "
          f"(the frozen endpoint)")
    print(f"  launch failures:    {int(cloud.launch_failures.value)}")
    print(f"\nplacer state: Z_A={len(policy.placer.active_zones)} zones, "
          f"Z_P={len(policy.placer.preempting_zones)} zones "
          f"(crashes did not poison zone stats)")


if __name__ == "__main__":
    main()
