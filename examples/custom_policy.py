"""Write your own serving policy.

SkyServe separates mechanism (the service controller) from policy (a
``ServingPolicy``).  This example implements a deliberately simple
custom policy — "spot in my favourite zone, one always-on on-demand
replica" — runs it against SpotHedge on the same trace and workload,
and prints both reports.  Use this as the template for experimenting
with new spot strategies.

Run:  python examples/custom_policy.py
"""

from typing import AbstractSet, Optional

from repro.cloud import HOUR, aws1
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    MixTarget,
    Observation,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    ServingPolicy,
    SkyService,
)
from repro.workloads import poisson_workload


class FavouriteZonePolicy(ServingPolicy):
    """All spot replicas in one preferred zone; a fixed on-demand floor.

    A policy must answer two questions each reconciliation tick:
    how many replicas of each kind (``target_mix``), and where the next
    spot replica goes (``select_spot_zone``).  The ``on_spot_*`` hooks
    deliver lifecycle feedback — this naive policy ignores it, which is
    precisely why it underperforms SpotHedge on volatile zones.
    """

    name = "FavouriteZone"

    def __init__(self, favourite_zone: str, od_floor: int = 1) -> None:
        self.favourite_zone = favourite_zone
        self.od_floor = od_floor

    def target_mix(self, obs: Observation) -> MixTarget:
        return MixTarget(
            spot_target=max(obs.n_tar - self.od_floor, 0),
            od_target=self.od_floor,
        )

    def select_spot_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        if self.favourite_zone in excluded:
            return None  # wait for the next tick
        return self.favourite_zone

    def select_od_zone(
        self, obs: Observation, excluded: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        return self.favourite_zone if self.favourite_zone not in excluded else None


def make_spec() -> ServiceSpec:
    return ServiceSpec(
        name="custom-policy-demo",
        replica_policy=ReplicaPolicyConfig(fixed_target=3, num_overprovision=1),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )


def main() -> None:
    trace = aws1()
    workload = poisson_workload(6 * HOUR, rate=0.3, seed=5)

    custom = FavouriteZonePolicy(trace.zone_ids[0])
    hedge = spothedge(trace.zone_ids, num_overprovision=1)

    print(f"{'policy':<15} {'fail':>7} {'p50':>7} {'avail':>7} "
          f"{'spot $':>8} {'od $':>8}")
    print("-" * 58)
    for policy in (custom, hedge):
        service = SkyService(make_spec(), policy, trace, seed=3)
        report = service.run(workload, 6 * HOUR)
        p50 = report.latency.p50 if report.latency else float("nan")
        print(
            f"{report.system:<15} {report.failure_rate:>7.2%} {p50:>6.1f}s "
            f"{report.availability:>7.1%} {report.spot_cost:>8.2f} "
            f"{report.od_cost:>8.2f}"
        )


if __name__ == "__main__":
    main()
