"""Heterogeneous accelerators: tier fallback (§6) + fleet mixing.

Two extensions beyond the paper's homogeneous experiments:

1. **Tier fallback** — when the spot market for the preferred GPU
   (A100) dries up, HeterogeneousPolicy launches on a cheaper,
   lower-end tier (V100) instead of waiting or paying for on-demand,
   and drifts back once the A100 market recovers.
2. **Capacity-weighted fleets** — hetero_spothedge co-optimises zone ×
   instance type over "zone@itype" pools, targeting N_Tar *effective*
   A10G units at minimum cost per unit (docs/HETEROGENEOUS.md).

Run:  python examples/heterogeneous_gpus.py
"""

import numpy as np

from repro.cloud import HOUR, SpotTrace
from repro.core import AcceleratorTier, HeterogeneousPolicy, spothedge
from repro.experiments import ReplayConfig, TraceReplayer

A100_ZONES = ("gcp:us-central1:us-central1-a", "gcp:us-east1:us-east1-b")
V100_ZONES = ("aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b")
STEP = 60.0
N = 12 * 60  # twelve hours


def build_trace() -> SpotTrace:
    """A100 zones black out from hour 3 to hour 8; V100 zones stay up."""
    a100 = np.full((2, N), 4)
    a100[:, 180:480] = 0
    v100 = np.full((2, N), 4)
    return SpotTrace(
        "hetero-demo",
        list(A100_ZONES) + list(V100_ZONES),
        STEP,
        np.vstack([a100, v100]),
    )


def main() -> None:
    trace = build_trace()

    # Plain SpotHedge restricted to the A100 tier: the blackout forces
    # it entirely onto on-demand fallback.
    a100_only = spothedge(list(A100_ZONES), num_overprovision=1)
    replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, k=3.0))
    plain = replayer.run(a100_only, spot_zones=trace.zone_ids)

    # The heterogeneous policy: A100 first, V100 when A100 is dry.
    hetero = HeterogeneousPolicy(
        [
            AcceleratorTier("A100", A100_ZONES, performance=1.0),
            AcceleratorTier("V100", V100_ZONES, performance=0.5),
        ],
        num_overprovision=1,
        tier_retry_interval=600.0,
    )
    replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, k=3.0))
    mixed = replayer.run(hetero, spot_zones=trace.zone_ids)

    print(f"{'policy':<22} {'availability':>13} {'spot cost':>10} "
          f"{'od cost':>9}")
    print("-" * 58)
    for label, result in (("SpotHedge (A100 only)", plain),
                          ("Heterogeneous tiers", mixed)):
        print(f"{label:<22} {result.availability:>13.1%} "
              f"{result.spot_cost:>10.1f} {result.od_cost:>9.1f}")

    print("\nDuring the A100 blackout the heterogeneous policy serves from")
    print("V100 spot capacity instead of expensive on-demand fallback:")
    print(f"  on-demand spend: {plain.od_cost:.1f} -> {mixed.od_cost:.1f} "
          f"replica-hour units "
          f"({1 - mixed.od_cost / max(plain.od_cost, 1e-9):.0%} less)")

    fleet_mix_demo()


def fleet_mix_demo() -> None:
    """The co-optimised fleet: SpotHedge over (zone x type) pools."""
    from repro.cloud import (
        PriceBook,
        aws1,
        hetero_catalog,
        make_hetero_trace,
        pool_capacity_weights,
        pool_price_multipliers,
        pool_spot_costs,
    )
    from repro.core import hetero_spothedge

    catalog = hetero_catalog()
    types = ["g5.48xlarge", "p4d.24xlarge"]  # 8xA10G and 8xA100 shapes
    trace = make_hetero_trace(
        aws1().window(0, 24 * HOUR), types, catalog, seed=0
    )
    book = PriceBook(catalog)
    ref = catalog.get("g5.48xlarge")
    pools = trace.zone_ids

    config = ReplayConfig(
        n_tar=4,  # effective A10G units, not replica counts
        k=ref.on_demand_hourly / ref.spot_hourly,
        zone_price_multipliers=pool_price_multipliers(
            pools, book, reference_price=ref.spot_hourly
        ),
        zone_capacity_weights=pool_capacity_weights(pools, catalog),
    )
    policy = hetero_spothedge(
        pools,
        pool_costs=pool_spot_costs(pools, book),
        pool_weights=config.zone_capacity_weights,
    )
    result = TraceReplayer(trace, config, engine="discrete").run(policy)

    print("\nCapacity-weighted A10G+A100 fleet over one aws1 day:")
    print(f"  effective availability: {result.eff_availability:.1%} "
          f"(>= {config.n_tar} A10G-units ready)")
    print(f"  cost vs {config.n_tar} on-demand reference replicas: "
          f"{result.relative_cost:.1%}")
    print("  (one A100 replica counts as ~2.7 A10G units, so the fleet")
    print("   covers the goal with fewer, cheaper-per-unit instances;")
    print("   the full frontier: `repro hetero frontier`)")


if __name__ == "__main__":
    main()
