"""Heterogeneous accelerators: fall back to a cheaper GPU tier (§6).

The paper's future-work extension, implemented: when the spot market
for the preferred GPU (A100) dries up, HeterogeneousPolicy launches on
a cheaper, lower-end tier (V100) instead of waiting or paying for
on-demand, and drifts back once the A100 market recovers.

This example builds a trace where A100 zones black out for a stretch,
replays both plain SpotHedge (A100-only) and the heterogeneous policy,
and shows the availability difference.

Run:  python examples/heterogeneous_gpus.py
"""

import numpy as np

from repro.cloud import HOUR, SpotTrace
from repro.core import AcceleratorTier, HeterogeneousPolicy, spothedge
from repro.experiments import ReplayConfig, TraceReplayer

A100_ZONES = ("gcp:us-central1:us-central1-a", "gcp:us-east1:us-east1-b")
V100_ZONES = ("aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b")
STEP = 60.0
N = 12 * 60  # twelve hours


def build_trace() -> SpotTrace:
    """A100 zones black out from hour 3 to hour 8; V100 zones stay up."""
    a100 = np.full((2, N), 4)
    a100[:, 180:480] = 0
    v100 = np.full((2, N), 4)
    return SpotTrace(
        "hetero-demo",
        list(A100_ZONES) + list(V100_ZONES),
        STEP,
        np.vstack([a100, v100]),
    )


def main() -> None:
    trace = build_trace()

    # Plain SpotHedge restricted to the A100 tier: the blackout forces
    # it entirely onto on-demand fallback.
    a100_only = spothedge(list(A100_ZONES), num_overprovision=1)
    replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, k=3.0))
    plain = replayer.run(a100_only, spot_zones=trace.zone_ids)

    # The heterogeneous policy: A100 first, V100 when A100 is dry.
    hetero = HeterogeneousPolicy(
        [
            AcceleratorTier("A100", A100_ZONES, performance=1.0),
            AcceleratorTier("V100", V100_ZONES, performance=0.5),
        ],
        num_overprovision=1,
        tier_retry_interval=600.0,
    )
    replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, k=3.0))
    mixed = replayer.run(hetero, spot_zones=trace.zone_ids)

    print(f"{'policy':<22} {'availability':>13} {'spot cost':>10} "
          f"{'od cost':>9}")
    print("-" * 58)
    for label, result in (("SpotHedge (A100 only)", plain),
                          ("Heterogeneous tiers", mixed)):
        print(f"{label:<22} {result.availability:>13.1%} "
              f"{result.spot_cost:>10.1f} {result.od_cost:>9.1f}")

    print("\nDuring the A100 blackout the heterogeneous policy serves from")
    print("V100 spot capacity instead of expensive on-demand fallback:")
    print(f"  on-demand spend: {plain.od_cost:.1f} -> {mixed.od_cost:.1f} "
          f"replica-hour units "
          f"({1 - mixed.od_cost / max(plain.od_cost, 1e-9):.0%} less)")


if __name__ == "__main__":
    main()
