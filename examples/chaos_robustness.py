"""Fault-injection scenarios and the robustness scorecard.

``repro.chaos`` (docs/CHAOS.md) turns "what happens to each policy
during one specific, nasty failure?" into a declarative scenario plus a
deterministic scorecard.  This example does both halves:

* **live injection** — run one SpotHedge ``SkyService`` through the
  bundled ``preemption-storm`` scenario with telemetry attached, and
  print the chaos events the injector emitted;
* **the matrix** — replay SpotHedge vs Even Spread against two
  scenarios with ``run_matrix`` and print the scorecard (availability
  under the storm, recovery time, SLO-violation minutes, cost
  overshoot vs each policy's own fault-free baseline).

Run:  python examples/chaos_robustness.py
"""

from repro.chaos import builtin_scenario, run_matrix
from repro.cloud import HOUR, aws2, gcp1
from repro.core import spothedge
from repro.serving import ReplicaPolicyConfig, ResourceSpec, ServiceSpec, SkyService
from repro.telemetry import EventBus, RingBufferSink
from repro.workloads import poisson_workload

SEED = 7


def live_injection() -> None:
    """One service, one storm, telemetry on."""
    trace = aws2()
    scenario = builtin_scenario("preemption-storm")
    spec = ServiceSpec(
        name="chaos-demo",
        replica_policy=ReplicaPolicyConfig(fixed_target=4, num_overprovision=2),
        resources=ResourceSpec(accelerator="V100"),
    )
    sink = RingBufferSink(capacity=100_000)
    service = SkyService(
        spec,
        spothedge(trace.zone_ids, num_overprovision=2),
        trace,
        seed=SEED,
        telemetry=EventBus([sink]),
        scenario=scenario,  # <- the whole opt-in
    )
    duration = 4 * HOUR
    report = service.run(poisson_workload(duration, rate=0.3, seed=SEED), duration)
    chaos_events = [e for e in sink.events if e.kind.startswith("chaos.")]
    print(f"live run: availability {report.availability:.1%}, "
          f"{report.preemptions} preemptions, "
          f"{len(chaos_events)} chaos events")
    for event in chaos_events[:8]:
        print(f"  t={event.time:7.0f}  {event.kind}")
    if len(chaos_events) > 8:
        print(f"  ... {len(chaos_events) - 8} more")


def robustness_matrix() -> None:
    """SpotHedge vs Even Spread across two scenarios."""
    trace = gcp1()
    scenarios = [
        builtin_scenario("preemption-storm"),
        builtin_scenario("capacity-blackout"),
    ]
    scorecard = run_matrix(
        trace,
        scenarios,
        ["SpotHedge", "EvenSpread"],
        seed=SEED,
        use_cache=False,
    )
    print(f"\nscorecard on {trace.name} (baselines: {scorecard.baselines})")
    for score in scorecard.to_dict()["scores"]:
        under = score["availability_under_injection"]
        recovery = score["recovery_seconds"]
        print(
            f"  {score['scenario']:<18} {score['policy']:<11} "
            f"avail {score['availability']:6.1%}  "
            f"storm {under:6.1%}  "
            f"recovery {'never' if recovery is None else f'{recovery:.0f}s':>6}  "
            f"cost {score['cost_overshoot']:+.1%}  "
            f"OD peak {score['od_peak']}"
        )


if __name__ == "__main__":
    live_injection()
    robustness_matrix()
