"""Regenerate the paper's §5.2 result data and archive it as JSON.

The paper's artifact ships raw data plus plotting scripts; this script
is the data half for the trace-replay experiments: it replays all four
spot datasets against every policy (including the clairvoyant bound),
collects Fig. 14a/b and Fig. 15 data, and writes one
``skyserve_results.json`` an external notebook can plot.

Run:  python examples/generate_all_results.py [output.json]
"""

import sys

import numpy as np

from repro.cloud import DAY, aws1, aws2, aws3, gcp1
from repro.core import (
    even_spread_policy,
    round_robin_policy,
    solve_omniscient_greedy,
    spothedge,
)
from repro.experiments import (
    ReplayConfig,
    ResultStore,
    TraceReplayer,
    estimate_latency,
)
from repro.workloads import arena_workload, maf_workload, poisson_workload

N_TAR = 4
K = 4.0

POLICIES = [
    ("SpotHedge", spothedge),
    ("RoundRobin", round_robin_policy),
    ("EvenSpread", even_spread_policy),
]


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "skyserve_results.json"
    store = ResultStore(
        metadata={
            "paper": "SkyServe (EuroSys '25)",
            "n_tar": N_TAR,
            "k": K,
            "note": "synthetic traces regenerated from the paper's statistics",
        }
    )

    traces = [aws1(), aws2(), aws3(), gcp1()]
    for trace in traces:
        print(f"replaying {trace.name} ({trace.duration / 86400:.0f} days)...")
        for name, factory in POLICIES:
            replayer = TraceReplayer(trace, ReplayConfig(n_tar=N_TAR, k=K))
            result = replayer.run(factory(trace.zone_ids))
            store.add("fig14", f"{trace.name}/{name}", result)
        bound = solve_omniscient_greedy(
            trace, N_TAR, k=K, resample_step=max(trace.step, 600.0)
        )
        store.add(
            "fig14",
            f"{trace.name}/ClairvoyantBound",
            {
                "relative_cost": bound.cost_relative_to_on_demand(N_TAR),
                "availability": bound.availability,
            },
        )

    # Fig. 15: latency over 3-day windows x 3 workloads.
    print("estimating Fig. 15 latencies...")
    for trace in traces:
        window = trace.window(0, min(3 * DAY, trace.duration), name=trace.name)
        workloads = {
            "Poisson": poisson_workload(window.duration, rate=0.15, seed=15),
            "Arena": arena_workload(window.duration, base_rate=0.15, seed=15),
            "MAF": maf_workload(window.duration, base_rate=0.12, seed=15),
        }
        for policy_name, factory in POLICIES:
            replayer = TraceReplayer(window, ReplayConfig(n_tar=N_TAR, k=K))
            result = replayer.run(factory(window.zone_ids))
            for workload_name, workload in workloads.items():
                latencies = estimate_latency(
                    result, workload, service_time=8.0, timeout=100.0
                )
                store.add(
                    "fig15",
                    f"{trace.name}/{workload_name}/{policy_name}",
                    {
                        "mean": float(np.mean(latencies)),
                        "p99": float(np.percentile(latencies, 99)),
                        "n_requests": int(latencies.size),
                    },
                )

    store.save(out_path)
    n_records = sum(
        len(labels) for labels in store.to_document()["experiments"].values()
    )
    print(f"wrote {n_records} records to {out_path}")


if __name__ == "__main__":
    main()
