"""Autoscaling: N_Tar follows the load, SpotHedge follows N_Tar (§4).

The paper's evaluation pins the target replica count; in production the
autoscaler computes it from the request rate: N_Can = ceil(R_t / Q_Tar),
applied only after it has persisted past the up/down hold times.  This
example serves a day with a strong diurnal pattern and prints how the
target, the spot fleet, and the on-demand fallback evolve.

Run:  python examples/autoscaling.py
"""

import numpy as np

from repro.cloud import HOUR, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    SkyService,
)
from repro.workloads import arena_workload

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]
DURATION = 12 * HOUR


def main() -> None:
    # Plenty of spot capacity: this example isolates the autoscaler.
    trace = SpotTrace("abundant", ZONES, 60.0, np.full((3, 12 * 60), 8))

    spec = ServiceSpec(
        name="autoscaled-llm",
        replica_policy=ReplicaPolicyConfig(
            target_qps_per_replica=0.5,     # Q_Tar, as in Listing 1
            min_replicas=1,
            max_replicas=16,
            num_overprovision=1,
            qps_window=60.0,
            upscale_delay=300.0,
            downscale_delay=600.0,
        ),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )
    policy = spothedge(ZONES, num_overprovision=1)
    profile = ModelProfile("demo-llm", overhead=1.5, prefill_per_token=0.001,
                           decode_per_token=0.01, max_concurrency=8)
    service = SkyService(spec, policy, trace, profile=profile, seed=21)

    # Strong day/night swing: base 1.5 req/s with 90% amplitude.
    workload = arena_workload(
        DURATION,
        base_rate=1.5,
        diurnal_amplitude=0.9,
        burst_rate_per_hour=0.3,
        burst_multiplier=2.0,
        max_output_tokens=500,
        seed=4,
    )
    report = service.run(workload, DURATION)

    controller = service.controller
    print(f"{'hour':>5} {'req/s':>6} {'N_Tar':>6} {'spot ready':>11} "
          f"{'od ready':>9}")
    print("-" * 44)
    _, rates = workload.rate_series(bin_seconds=HOUR)
    for hour in range(12):
        t = hour * HOUR + HOUR / 2
        print(
            f"{hour:>5} {rates[hour]:>6.2f} "
            f"{controller.n_tar_series.value_at(t):>6.0f} "
            f"{controller.ready_spot_series.value_at(t):>11.0f} "
            f"{controller.ready_od_series.value_at(t):>9.0f}"
        )

    od_hourly = 3.06  # p3.2xlarge on-demand
    static_peak_fleet = od_hourly * 8 * 12  # provisioned for the peak
    print(f"\nfailure rate {report.failure_rate:.2%}, "
          f"p50 {report.latency.p50:.1f}s, "
          f"cost ${report.total_cost:.2f} "
          f"(a peak-provisioned 8-replica on-demand fleet: "
          f"${static_peak_fleet:.2f})")


if __name__ == "__main__":
    main()
