"""Quickstart: serve an LLM on spot instances with SpotHedge.

Deploys a Llama-2-70B-style service (Listing 1 of the paper) on the
simulated multi-cloud, serves two hours of bursty Arena-like traffic,
and prints the report: latency percentiles, failure rate, availability,
and cost split into spot and on-demand.

Run:  python examples/quickstart.py
"""

from repro.cloud import HOUR, aws1, default_catalog
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    SkyService,
    llama2_70b_profile,
)
from repro.workloads import arena_workload


def main() -> None:
    # 1. A spot obtainability trace.  aws1() regenerates the paper's
    #    two-week, three-zone V100 dataset; bring your own SpotTrace to
    #    replay real collected data.
    trace = aws1()

    # 2. The service spec — the programmatic form of Listing 1.
    spec = ServiceSpec(
        name="llama2-chat",
        readiness_probe_path="/v1/chat/completions",
        replica_policy=ReplicaPolicyConfig(
            target_qps_per_replica=1.0,
            fixed_target=4,          # hold N_Tar at 4 for this demo
            num_overprovision=2,     # N_Extra (SS 3.2)
            dynamic_ondemand_fallback=True,
            spot_placer="dynamic",   # Alg. 1
        ),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=100.0,
    )

    # 3. The SpotHedge policy over the zones the trace covers.
    policy = spothedge(trace.zone_ids, num_overprovision=2)

    # 4. Deploy and serve a bursty workload.
    service = SkyService(spec, policy, trace, profile=llama2_70b_profile(), seed=42)
    workload = arena_workload(2 * HOUR, base_rate=0.5, max_output_tokens=800, seed=7)
    report = service.run(workload, duration=2 * HOUR)

    # 5. Read the results.
    print(f"system:        {report.system}")
    print(f"requests:      {report.total_requests} ({report.failed} failed, "
          f"{report.failure_rate:.2%})")
    if report.latency:
        print(f"latency:       p50={report.latency.p50:.1f}s "
              f"p90={report.latency.p90:.1f}s p99={report.latency.p99:.1f}s")
    print(f"availability:  {report.availability:.1%} of time >= N_Tar ready")
    print(f"cost:          ${report.total_cost:.2f} "
          f"(spot ${report.spot_cost:.2f} + on-demand ${report.od_cost:.2f})")
    od_hourly = default_catalog().get("p3.2xlarge").on_demand_hourly
    relative = report.cost_relative_to_on_demand(od_hourly=od_hourly, n_tar=4)
    print(f"vs on-demand:  {relative:.1%} of an all-on-demand deployment")
    print(f"preemptions:   {report.preemptions} "
          f"(launch failures: {report.launch_failures})")


if __name__ == "__main__":
    main()
